(* Fault-injection harness: exercise the verification engine's
   resilience machinery (supervised pool, budget ladder, structured
   crashes) by injecting faults at every layer and asserting that
   verdicts and accounting survive.

   Two families of mode:

   - Registry-wide modes wrap the opaque [c_verify] thunks of every
     Table 1 row.  The injection channel is [Budget.limits.l_tick_hook]
     — the scheduler charges one tick per explored configuration, so a
     raising hook is an exception at an arbitrary point of an arbitrary
     exploration.  The fault-free baseline is computed once per case
     and cached.

   - Action-level modes build bespoke scenarios around wrapped actions
     (spurious CAS failure, transiently-unsafe [safe]).  Wrappers carry
     mutable or state-hashed nondeterminism, which would violate the
     memoizing keyer's immutable-captures assumption, so these modes
     run only under the Sampled tier ([check_triple_random], which
     never memoizes). *)

open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux
module Registry = Fcsl_report.Registry

type mode =
  | Pool_transient
  | Pool_persistent
  | Mid_explore
  | Budget_starve
  | Spurious_cas
  | Transient_unsafe
  | Env_burst
  | Kill9_midrun
  | Service_client_kill
  | Service_torn_frames
  | Service_kill9
  | Service_supervisor_kill
  | Service_overload_flood
  | Journal_enospc
  | Client_retry_partition

let all_modes =
  [
    Pool_transient; Pool_persistent; Mid_explore; Budget_starve; Spurious_cas;
    Transient_unsafe; Env_burst; Kill9_midrun; Service_client_kill;
    Service_torn_frames; Service_kill9; Service_supervisor_kill;
    Service_overload_flood; Journal_enospc; Client_retry_partition;
  ]

let mode_name = function
  | Pool_transient -> "pool-transient"
  | Pool_persistent -> "pool-persistent"
  | Mid_explore -> "mid-explore"
  | Budget_starve -> "budget-starve"
  | Spurious_cas -> "spurious-cas"
  | Transient_unsafe -> "transient-unsafe"
  | Env_burst -> "env-burst"
  | Kill9_midrun -> "kill9-midrun"
  | Service_client_kill -> "service-client-kill"
  | Service_torn_frames -> "service-torn-frames"
  | Service_kill9 -> "service-kill9"
  | Service_supervisor_kill -> "service-supervisor-kill"
  | Service_overload_flood -> "service-overload-flood"
  | Journal_enospc -> "journal-enospc"
  | Client_retry_partition -> "client-retry-partition"

let mode_of_name n = List.find_opt (fun m -> mode_name m = n) all_modes
let pp_mode ppf m = Fmt.string ppf (mode_name m)

type outcome = {
  o_mode : mode;
  o_case : string;
  o_passed : bool;
  o_detail : string;
}

let pp_outcome ppf o =
  Fmt.pf ppf "%-17s %-28s %s  %s" (mode_name o.o_mode) o.o_case
    (if o.o_passed then "ok  " else "FAIL")
    o.o_detail

(* --- shared helpers ------------------------------------------------- *)

let registry_cases ?cases () =
  match cases with
  | None -> Registry.all
  | Some names ->
    List.filter (fun c -> List.mem c.Registry.c_name names) Registry.all

(* The fault-free baseline of a registry row, cached: several modes
   compare against it and each [c_verify] is a full verification. *)
let baseline_cache : (string, Verify.report list) Hashtbl.t =
  Hashtbl.create 16

let baseline (c : Registry.case) =
  match Hashtbl.find_opt baseline_cache c.Registry.c_name with
  | Some r -> r
  | None ->
    let r = c.Registry.c_verify () in
    Hashtbl.add baseline_cache c.Registry.c_name r;
    r

(* Verdict equality between a baseline and a chaos run: everything the
   engine promises to preserve under absorbed transient faults.  Budget
   stats are intentionally excluded (the chaos run armed one). *)
let same_verdicts (base : Verify.report list) (chaos : Verify.report list) :
    (unit, string) result =
  if List.length base <> List.length chaos then
    Error
      (Fmt.str "report count %d <> %d" (List.length base) (List.length chaos))
  else
    let diff =
      List.find_map
        (fun (b, h) ->
          let open Verify in
          if b.spec_name <> h.spec_name then
            Some (Fmt.str "spec %s <> %s" b.spec_name h.spec_name)
          else if ok b <> ok h then Some (b.spec_name ^ ": ok differs")
          else if b.tier <> h.tier then Some (b.spec_name ^ ": tier differs")
          else if b.initial_states <> h.initial_states then
            Some (b.spec_name ^ ": initial_states differ")
          else if b.outcomes <> h.outcomes then
            Some (b.spec_name ^ ": outcomes differ")
          else if b.diverged <> h.diverged then
            Some (b.spec_name ^ ": diverged differs")
          else if b.complete <> h.complete then
            Some (b.spec_name ^ ": complete differs")
          else if
            not
              (List.equal
                 (fun f g -> Crash.equal f.crash g.crash)
                 b.failures h.failures)
          then Some (b.spec_name ^ ": failure sets differ")
          else if h.worker_crashes <> [] then
            Some (b.spec_name ^ ": unexpected worker crashes")
          else None)
        (List.combine base chaos)
    in
    match diff with None -> Ok () | Some d -> Error d

(* An escaped exception is itself a harness failure, never a crash of
   the harness. *)
let outcome mode case (f : unit -> (string, string) result) : outcome =
  match f () with
  | Ok detail -> { o_mode = mode; o_case = case; o_passed = true; o_detail = detail }
  | Error detail ->
    { o_mode = mode; o_case = case; o_passed = false; o_detail = detail }
  | exception e ->
    {
      o_mode = mode;
      o_case = case;
      o_passed = false;
      o_detail = "escaped exception: " ^ Printexc.to_string e;
    }

(* --- registry-wide modes -------------------------------------------- *)

(* Re-verify a case with a tick hook injected through the engine-default
   budget (the hook makes the budget non-trivial, arming it on every
   [check_triple] without any actual ceiling). *)
let verify_with_hook hook (c : Registry.case) =
  Verify.with_engine
    ~budget:(Budget.limits ~tick_hook:hook ())
    c.Registry.c_verify

let transient_hook () =
  let fired = Atomic.make false in
  fun () ->
    if not (Atomic.exchange fired true) then
      raise (Crash.Injected "chaos: transient worker fault")

let mid_explore_hook () =
  let n = Atomic.make 0 in
  fun () ->
    if Atomic.fetch_and_add n 1 = 50 then
      raise (Crash.Injected "chaos: fault mid-exploration")

let persistent_hook () () = raise (Crash.Injected "chaos: persistent fault")

let run_absorbed mode hook_of ?cases () =
  List.map
    (fun c ->
      outcome mode c.Registry.c_name (fun () ->
          let base = baseline c in
          let chaos = verify_with_hook (hook_of ()) c in
          Result.map
            (fun () -> "verdicts identical to fault-free baseline")
            (same_verdicts base chaos)))
    (registry_cases ?cases ())

let run_persistent ?cases () =
  List.map
    (fun c ->
      outcome Pool_persistent c.Registry.c_name (fun () ->
          let chaos = verify_with_hook (persistent_hook ()) c in
          let code = Verify.exit_code chaos in
          if code <> Verify.exit_internal then
            Error (Fmt.str "exit code %d, wanted %d" code Verify.exit_internal)
          else if
            (* a report whose precondition admits no initial state never
               runs a worker, so it legitimately has nothing to crash *)
            not
              (List.for_all
                 (fun r ->
                   (r.Verify.initial_states = 0
                   || r.Verify.worker_crashes <> [])
                   && List.for_all
                        (fun f ->
                          Crash.kind f.Verify.crash = Crash.Injected_fault)
                        r.Verify.worker_crashes)
                 chaos)
          then Error "a report is missing injected-fault worker quarantines"
          else if
            not (List.exists (fun r -> r.Verify.worker_crashes <> []) chaos)
          then Error "no worker was quarantined at all"
          else Ok "all workers quarantined as injected-fault, exit code 3"))
    (registry_cases ?cases ())

(* Starvation ceilings: small enough to trip every real exploration,
   with a wall-clock deadline backstop so the whole ladder is bounded
   even if state counting were somehow defeated. *)
let starve_limits () = Budget.limits ~max_states:64 ~deadline_s:10.0 ()

let run_starve ?cases ?(seed = 1) () =
  List.map
    (fun c ->
      outcome Budget_starve c.Registry.c_name (fun () ->
          let reports =
            Verify.with_engine ~budget:(starve_limits ()) ~seed
              c.Registry.c_verify
          in
          let bad =
            List.find_opt
              (fun r ->
                let open Verify in
                let sound = r.failures <> [] in
                let conclusive = ok r && r.complete && not (degraded r) in
                let degraded_ok =
                  degraded r
                  && r.budget <> None
                  && (r.tier <> Sampled || r.seed = Some seed)
                in
                not (sound || conclusive || degraded_ok))
              reports
          in
          match bad with
          | Some r ->
            Error
              (Fmt.str "%s: neither sound nor explicitly degraded (tier %s)"
                 r.Verify.spec_name (Verify.tier_name r.Verify.tier))
          | None ->
            Ok
              (Fmt.str "%d reports: all sound or explicitly degraded"
                 (List.length reports))))
    (registry_cases ?cases ())

(* --- action-level modes --------------------------------------------- *)

(* The bespoke scenario: a spin-lock increment over the CAS lock's
   counter resource — acquisition is an explicit [try_lock ~await:false]
   retry loop, so a spurious CAS failure is benign (one more spin), and
   the critical section gives a natural place for a transiently-unsafe
   read. *)
module C = Cg_incr.Cas

let spin_incr ~(try_lock : bool Action.t) ~(read : Value.t Action.t) :
    unit Prog.t =
  let open Prog in
  let* () =
    ffix
      (fun loop () ->
        let* got = act try_lock in
        if got then ret () else loop ())
      ()
  in
  let* v = act read in
  let v = Option.value (Value.as_int v) ~default:0 in
  let* () = act (Caslock.write C.label C.cfg C.x_cell (Value.int (v + 1))) in
  Caslock.unlock C.label C.cfg C.resource ~delta:(Aux.nat 1)

let plain_try_lock () = Caslock.try_lock ~await:false C.label C.cfg
let plain_read () = Caslock.read C.label C.cfg C.x_cell

(* CAS that fails spuriously ~1/3 of the time: returns [false] without
   touching the state, exactly what a weak CAS is allowed to do.  The
   wrapper keeps the base action's safety/enabledness/footprint, so the
   only divergence is extra spins.  Mutable RNG in the step makes this
   wrapper illegal under memoized exploration — Sampled tier only. *)
let flaky_try_lock rng =
  let base = plain_try_lock () in
  Action.make
    ~name:(Action.name base)
    ~enabled:(Action.enabled base)
    ~fp:(Action.footprint base)
    ~safe:(Action.safe base)
    ~phys:(Action.phys base)
    ~step:(fun st ->
      if Random.State.int rng 3 = 0 then (false, st)
      else Action.step_exn base st)
    ()

(* [safe] that spuriously answers [false] in some states: each distinct
   state (by its rendering) gets a sticky verdict on first encounter,
   alternating unsafe/safe — so at least one reached state is unsafe,
   and the scheduler's safety check and [step_exn]'s internal recheck
   always agree (a fresh random draw per call would let the first pass
   and raise from the second, escaping the engine as
   [Invalid_argument]). *)
let flaky_unsafe_read () =
  let base = plain_read () in
  let decided : (string, bool) Hashtbl.t = Hashtbl.create 8 in
  let next_unsafe = ref true in
  let spuriously_unsafe st =
    let key = Fmt.str "%a" State.pp st in
    match Hashtbl.find_opt decided key with
    | Some b -> b
    | None ->
      let b = !next_unsafe in
      next_unsafe := not b;
      Hashtbl.add decided key b;
      b
  in
  Action.make
    ~name:(Action.name base)
    ~enabled:(Action.enabled base)
    ~fp:(Action.footprint base)
    ~safe:(fun st -> (not (spuriously_unsafe st)) && Action.safe base st)
    ~phys:(Action.phys base)
    ~step:(fun st -> Action.step_exn base st)
    ()

let sampled_spin ~seed ~try_lock ~read =
  Verify.check_triple_random ~fuel:400 ~trials:50 ~interference:false
    ~budget:Budget.no_limits ~seed ~world:(C.world ())
    ~init:(C.init_states ())
    (spin_incr ~try_lock ~read)
    (C.incr_spec C.label ())

let run_spurious_cas ?(seed = 1) () =
  [
    outcome Spurious_cas "spin-lock increment" (fun () ->
        let base =
          sampled_spin ~seed ~try_lock:(plain_try_lock ()) ~read:(plain_read ())
        in
        let rng = Random.State.make [| seed |] in
        let chaos =
          sampled_spin ~seed ~try_lock:(flaky_try_lock rng)
            ~read:(plain_read ())
        in
        if not (Verify.ok base) then Error "baseline spin increment not ok"
        else if not (Verify.ok chaos) then
          Error "spurious CAS failures broke the verdict"
        else if chaos.Verify.tier <> Verify.Sampled then
          Error "expected a Sampled-tier report"
        else Ok "retry loop absorbs spurious CAS failures; verdict ok");
  ]

let run_transient_unsafe ?(seed = 1) () =
  [
    outcome Transient_unsafe "spin-lock increment" (fun () ->
        let chaos =
          sampled_spin ~seed ~try_lock:(plain_try_lock ())
            ~read:(flaky_unsafe_read ())
        in
        if chaos.Verify.failures = [] then
          Error "transient unsafety produced no recorded failure"
        else if
          not
            (List.for_all
               (fun f -> Crash.kind f.Verify.crash = Crash.Unsafe_action)
               chaos.Verify.failures)
        then Error "a failure was not classified unsafe-action"
        else if chaos.Verify.worker_crashes <> [] then
          Error "unsafety escaped as an engine crash"
        else
          Ok
            (Fmt.str
               "%d structured unsafe-action failures, engine intact"
               (List.length chaos.Verify.failures)));
  ]

let run_env_burst ?(seed = 1) () =
  let snapshot =
    outcome Env_burst "pair snapshot" (fun () ->
        let r =
          Verify.check_triple_random ~fuel:400 ~trials:60 ~interference:true
            ~budget:Budget.no_limits ~seed ~world:(Snapshot.world ())
            ~init:(Snapshot.init_states ())
            (Snapshot.read_pair Snapshot.sp_label)
            (Snapshot.read_pair_spec Snapshot.sp_label)
        in
        if not (Verify.ok r) then
          Error "interference bursts broke the snapshot verdict"
        else Ok (Fmt.str "ok under %d bursty sampled runs" r.Verify.outcomes))
  in
  let incr =
    outcome Env_burst "CG increment" (fun () ->
        let r =
          Verify.check_triple_random ~fuel:400 ~trials:60 ~interference:true
            ~budget:Budget.no_limits ~seed ~world:(C.world ())
            ~init:(C.init_states ())
            (C.incr C.label ())
            (C.incr_spec C.label ())
        in
        if not (Verify.ok r) then
          Error "interference bursts broke the increment verdict"
        else Ok (Fmt.str "ok under %d bursty sampled runs" r.Verify.outcomes))
  in
  [ snapshot; incr ]

(* --- kill9-midrun: crash-recovery across process death --------------- *)

(* The durability property (see docs/ROBUSTNESS.md): a verification run
   journaling to a write-ahead journal can be SIGKILLed at an arbitrary
   instant and resumed, repeatedly, and the eventually-completed run's
   verdicts are identical to an uninterrupted unjournaled run's — while
   the journal's durable-unit count grows monotonically across the
   kills.

   Mechanics: fork a child per cycle; the child arms a budget tick hook
   that SIGKILLs its own process at a randomized tick (the hook fires
   mid-exploration, so the kill lands at an arbitrary point of journal
   activity — possibly mid-record, which is exactly the torn tail
   recovery truncates).  The kill tick grows per cycle so every cycle
   makes fresh progress past the replayed units; after the cycle budget
   a final in-process resume completes the run and is compared to the
   baseline. *)

let kill9_limits kill_at =
  let n = Atomic.make 0 in
  Budget.limits
    ~tick_hook:(fun () ->
      if Atomic.fetch_and_add n 1 = kill_at then
        Unix.kill (Unix.getpid ()) Sys.sigkill)
    ()

let str_contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let kill9_max_cycles = 8

let run_kill9 ?cases ?(seed = 1) () =
  List.map
    (fun c ->
      outcome Kill9_midrun c.Registry.c_name (fun () ->
          let base = baseline c in
          let dir =
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Fmt.str "fcsl-kill9-%d-%s" (Unix.getpid ())
                 (String.map
                    (fun ch ->
                      match ch with
                      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> ch
                      | _ -> '-')
                    c.Registry.c_name))
          in
          (* start from a clean journal: a stale one would fake resume *)
          Journal.close (Journal.openj ~resume:false dir);
          let count_units () =
            let records, _ = Journal.read dir in
            List.fold_left
              (fun acc j -> acc + j.Journal.j_units)
              0
              (Journal.jobs_of_records records)
          in
          let rng = Random.State.make [| seed; Hashtbl.hash c.Registry.c_name |] in
          let prev_units = ref 0 in
          let monotone () =
            let u = count_units () in
            if u < !prev_units then
              Error (Fmt.str "durable units shrank: %d -> %d" !prev_units u)
            else begin
              prev_units := u;
              Ok u
            end
          in
          (* One kill cycle: fork, let the child verify-with-journal and
             self-SIGKILL at [kill_at] ticks, reap it.  [Ok true] when
             the child finished before the kill fired. *)
          let cycle kill_at =
            (* the child inherits the parent's buffered output; flush so
               its [_exit] cannot double-print *)
            flush stdout;
            flush stderr;
            match Unix.fork () with
            | 0 ->
              let code =
                match
                  let j = Journal.openj ~resume:true dir in
                  Fun.protect
                    ~finally:(fun () -> Journal.close j)
                    (fun () ->
                      Verify.with_engine ~journal:(Some j)
                        ~budget:(kill9_limits kill_at) ~seed
                        c.Registry.c_verify)
                with
                | _reports -> 0
                | exception _ -> 10
              in
              (* [_exit]: no atexit, no flushing of inherited channels *)
              Unix._exit code
            | pid -> (
              match snd (Unix.waitpid [] pid) with
              | Unix.WSIGNALED s when s = Sys.sigkill -> Ok false
              | Unix.WEXITED 0 -> Ok true
              | Unix.WEXITED n -> Error (Fmt.str "child exited %d" n)
              | Unix.WSIGNALED s -> Error (Fmt.str "child killed by signal %d" s)
              | Unix.WSTOPPED s -> Error (Fmt.str "child stopped by signal %d" s))
          in
          let rec cycles i kills =
            if i >= kill9_max_cycles then Ok kills
            else
              (* grows per cycle so each child out-runs the replayed
                 prefix, but starts low enough to land kills even on
                 small registry rows *)
              let kill_at = 25 + (i * i * 120) + Random.State.int rng 50 in
              match cycle kill_at with
              | Error _ as e -> e
              | Ok finished -> (
                match monotone () with
                | Error _ as e -> e
                | Ok _ -> if finished then Ok kills else cycles (i + 1) (kills + 1))
          in
          match cycles 0 0 with
          | exception Failure msg when str_contains msg "fork" ->
            (* OCaml 5 forbids [Unix.fork] in any process that has ever
               spawned a domain; inside the test binary the pool suites
               run first, so real process death cannot be staged here.
               The standalone CLI ([fcsl chaos --mode kill9-midrun])
               never spawns domains and forks for real. *)
            Ok (Fmt.str "skipped: fork unavailable (%s)" msg)
          | Error e -> Error e
          | Ok kills -> (
            (* final in-process resume: completed specs replay wholesale,
               interrupted ones re-enter at their journaled rung *)
            let j = Journal.openj ~resume:true dir in
            let resumed =
              Fun.protect
                ~finally:(fun () -> Journal.close j)
                (fun () ->
                  Verify.with_engine ~journal:(Some j) ~seed
                    c.Registry.c_verify)
            in
            match (same_verdicts base resumed, monotone ()) with
            | Error e, _ -> Error ("after resume: " ^ e)
            | _, Error e -> Error e
            | Ok (), Ok units ->
              Ok
                (Fmt.str
                   "%d SIGKILL%s absorbed, %d durable units, resumed \
                    verdicts identical to baseline"
                   kills
                   (if kills = 1 then "" else "s")
                   units))))
    (registry_cases ?cases ())

(* --- service modes -------------------------------------------------- *)

(* The remaining modes attack the verification daemon ([fcsl serve])
   rather than the engine underneath it: clients killed mid-stream,
   torn or malformed wire frames, and a kill -9 of the daemon itself
   between group commits followed by a [--resume] restart.  The
   invariants are the service's robustness contract: verdicts never
   flip (canonical wire verdicts stay baseline-identical), durable
   units stay monotone across daemon deaths, cancelled work is never
   journaled as a memoizable verdict, and every frame — garbage
   included — gets a structured answer, never a hang or a crash. *)

module Json = Fcsl_service.Json
module Protocol = Fcsl_service.Protocol
module Server = Fcsl_service.Server
module Client = Fcsl_service.Client

let ( let* ) = Result.bind

(* Service modes default to a small case subset: each outcome stands up
   (and tears down) a whole daemon, so a registry-wide sweep would
   re-verify Table 1 many times over.  An explicit [cases] restriction
   still wins. *)
let service_cases ?cases ~default () =
  registry_cases ~cases:(Option.value cases ~default) ()

let svc_counter = ref 0

let svc_paths tag =
  incr svc_counter;
  let stamp = Fmt.str "fcsl-chaos-%s-%d-%d" tag (Unix.getpid ()) !svc_counter in
  let tmp = Filename.get_temp_dir_name () in
  (Filename.concat tmp (stamp ^ ".sock"), Filename.concat tmp stamp)

(* Run [f] against a fresh in-process daemon on a fresh journal.
   [jobs] stays 1 — an in-process server must not spawn domains, or a
   later [Service_kill9] fork in the same chaos run would be forbidden
   by the runtime — and the baseline of any case [f] compares against
   must be computed *before* this call: the executor thread and
   [baseline] both go through the engine's process-global defaults. *)
let with_server ?(job_delay_s = 0.) ?queue_bound ?overload_high ?overload_low
    ?rate ~tag f =
  let socket, dir = svc_paths tag in
  Journal.close (Journal.openj ~resume:false dir);
  let cfg =
    Server.config ~signals:false ~jobs:1 ~job_delay_s ?queue_bound
      ?overload_high ?overload_low ?rate ~socket ~journal_dir:dir ()
  in
  let t = Server.create cfg in
  let th = Thread.create Server.run t in
  let finish () =
    Server.stop t;
    Thread.join th
  in
  if not (Client.wait_ready ~socket ()) then begin
    finish ();
    Error "in-process daemon never answered a ping"
  end
  else Fun.protect ~finally:finish (fun () -> f ~socket ~dir)

let canon frame = Json.to_string (Protocol.canonical_verdict frame)

(* Render the fault-free baseline through the same wire path the daemon
   uses, so chaos verdicts compare canonical-to-canonical. *)
let baseline_canon (c : Registry.case) =
  let frame =
    Protocol.verdict ~job:0 ~case:c.Registry.c_name ~digest:"" ~memo:false
      ~fresh_units:0 ~cancelled:false ~reports:(baseline c) ()
  in
  match Json.parse frame with
  | Ok v -> canon v
  | Error e -> Fmt.failwith "unrenderable baseline verdict: %s" e

(* A client SIGKILLed mid-stream: the daemon must cancel the orphaned
   job through the budget's cancel probe, settle it in the ledger as
   cancelled (never as a memoizable verdict), stay responsive, and
   serve a fresh resubmission whose verdict equals the baseline. *)
let run_service_client_kill ?cases () =
  List.map
    (fun c ->
      let name = c.Registry.c_name in
      outcome Service_client_kill name (fun () ->
          let expect = baseline_canon c in
          with_server ~tag:"ckill" ~job_delay_s:0.4 (fun ~socket ~dir ->
              (* submit, read the ack, vanish mid-stream: the delay
                 keeps the job pre-exploration while the disconnect
                 lands, so cancellation goes through the cancel probe *)
              let c1 = Client.connect ~socket in
              Client.send c1
                (Protocol.Submit { case = name; qos = Protocol.Gold });
              let* _ack =
                Result.map_error
                  (fun e -> "no ack before the kill: " ^ e)
                  (Client.read_frame ~timeout_s:10. c1)
              in
              Client.abandon c1;
              (* wait for the ledger to settle the orphan *)
              let spec = "job/" ^ name in
              let tiers_of () =
                let records, _ = Journal.read dir in
                List.filter_map
                  (function
                    | Journal.Spec_done ri when ri.Journal.ri_spec = spec ->
                      Some ri.Journal.ri_tier
                    | _ -> None)
                  records
              in
              let deadline = Unix.gettimeofday () +. 15. in
              let rec settle () =
                match tiers_of () with
                | [] when Unix.gettimeofday () < deadline ->
                  Thread.delay 0.05;
                  settle ()
                | tiers -> tiers
              in
              match settle () with
              | [] -> Error "the orphaned job never settled in the ledger"
              | tiers when List.mem "service" tiers ->
                Error "a cancelled job was journaled as a memoizable verdict"
              | _ ->
                (* the daemon survived; a fresh client re-explores and
                   lands exactly the baseline verdict *)
                let c2 = Client.connect ~socket in
                if not (Client.ping c2) then
                  Error "daemon unresponsive after the client kill"
                else (
                  match Client.submit c2 ~case:name with
                  | Error e ->
                    Error
                      (Fmt.str "resubmit failed: %a" Client.pp_submit_error e)
                  | Ok v ->
                    Client.close c2;
                    if v.Client.v_memo then
                      Error "resubmission hit a memo that must not exist"
                    else if canon v.Client.v_frame <> expect then
                      Error "resubmitted verdict differs from the baseline"
                    else
                      Ok
                        "orphan cancelled and never memoized; resubmission \
                         matches the baseline"))))
    (service_cases ?cases ~default:[ "CAS-lock" ] ())

(* Garbage the torn-frames mode feeds the daemon, one frame per failure
   class of the protocol parser plus raw non-JSON bytes. *)
let torn_lines =
  [
    "{\"op\": \"submit\", \"ca";
    "\001\002\255 binary garbage";
    "[1, 2, 3]";
    "{\"op\": \"frobnicate\"}";
    "{\"op\": \"submit\"}";
    "{\"op\": \"submit\", \"case\": \"CAS-lock\", \"qos\": \"platinum\"}";
    "{\"op\": \"cancel\"}";
    "{\"msg\": \"no op at all\"}";
  ]

(* Torn and malformed frames: every garbage line must come back as a
   structured protocol-error crash frame — never a hang, a dropped
   connection or a daemon crash — and the same connection must keep
   serving well-formed traffic afterwards, with verdicts unchanged. *)
let run_service_torn_frames ?cases () =
  List.map
    (fun c ->
      let name = c.Registry.c_name in
      outcome Service_torn_frames name (fun () ->
          let expect = baseline_canon c in
          with_server ~tag:"torn" (fun ~socket ~dir:_ ->
              let cn = Client.connect ~socket in
              let answer line =
                Client.send_raw cn line;
                match Client.read_frame ~timeout_s:10. cn with
                | Error e ->
                  Error (Fmt.str "no answer to torn frame %S: %s" line e)
                | Ok frame -> (
                  let kind =
                    Option.bind (Json.member "crash" frame) (fun cr ->
                        Option.bind (Json.member "kind" cr) Json.to_str)
                  in
                  match
                    (Option.bind (Json.member "type" frame) Json.to_str, kind)
                  with
                  | Some "error", Some "protocol-error" -> Ok ()
                  | ty, _ ->
                    Error
                      (Fmt.str
                         "torn frame %S answered with %s, wanted a \
                          protocol-error crash"
                         line
                         (Option.value ty ~default:"nothing")))
              in
              let* () =
                List.fold_left
                  (fun acc line -> Result.bind acc (fun () -> answer line))
                  (Ok ()) torn_lines
              in
              (* an unknown case through a well-formed submit is the
                 same structured answer *)
              let* () =
                match Client.submit cn ~case:"No Such Case" with
                | Error (Client.Server_error cr)
                  when Crash.kind cr = Crash.Protocol_error ->
                  Ok ()
                | Error e ->
                  Error
                    (Fmt.str "unknown case: wanted a protocol-error, got %a"
                       Client.pp_submit_error e)
                | Ok _ -> Error "unknown case: got a verdict"
              in
              if not (Client.ping cn) then
                Error "daemon stopped answering pings after the garbage"
              else (
                match Client.submit cn ~case:name with
                | Error e ->
                  Error
                    (Fmt.str "well-formed submit after garbage failed: %a"
                       Client.pp_submit_error e)
                | Ok v ->
                  Client.close cn;
                  if canon v.Client.v_frame <> expect then
                    Error "verdict after garbage differs from the baseline"
                  else
                    Ok
                      (Fmt.str
                         "%d torn frames answered with structured \
                          protocol-error crashes; verdict unchanged"
                         (List.length torn_lines + 1))))))
    (service_cases ?cases ~default:[ "CAS-lock" ] ())

(* kill -9 the daemon itself between group commits, restart with
   resume, and demand baseline-identical canonical verdicts plus a
   fully-memoized repeat pass.  Forks a real daemon process, so — like
   [Kill9_midrun] — it only runs where no domain was ever spawned (the
   standalone chaos CLI); under the test binary it reports skipped. *)
let run_service_kill9 ?cases () =
  let cs =
    service_cases ?cases
      ~default:[ "CAS-lock"; "Ticketed lock"; "Pair snapshot" ] ()
  in
  match cs with
  | [] -> []
  | _ ->
    let names = List.map (fun c -> c.Registry.c_name) cs in
    [
      outcome Service_kill9 (String.concat ", " names) (fun () ->
          (* writes to a SIGKILLed daemon's socket must be EPIPE
             errors, not a process-killing signal *)
          Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
          let expects =
            List.map (fun c -> (c.Registry.c_name, baseline_canon c)) cs
          in
          let socket, dir = svc_paths "skill9" in
          Journal.close (Journal.openj ~resume:false dir);
          let count_units () =
            let records, _ = Journal.read dir in
            List.fold_left
              (fun acc j -> acc + j.Journal.j_units)
              0
              (Journal.jobs_of_records records)
          in
          let spawn ~resume ~job_delay_s =
            flush stdout;
            flush stderr;
            match Unix.fork () with
            | 0 ->
              let code =
                match
                  Server.run
                    (Server.create
                       (Server.config ~resume ~fsync:Journal.Always
                          ~signals:false ~job_delay_s ~socket ~journal_dir:dir
                          ()))
                with
                | () -> 0
                | exception _ -> 10
              in
              Unix._exit code
            | pid -> pid
          in
          let reap pid = ignore (Unix.waitpid [] pid) in
          match spawn ~resume:false ~job_delay_s:0.2 with
          | exception Failure msg when str_contains msg "fork" ->
            Ok (Fmt.str "skipped: fork unavailable (%s)" msg)
          | pid1 ->
            if not (Client.wait_ready ~socket ()) then begin
              (try Unix.kill pid1 Sys.sigkill with _ -> ());
              reap pid1;
              Error "the first daemon never answered a ping"
            end
            else begin
              (* fire the cases from a background thread so submissions
                 are mid-flight when the SIGKILL lands *)
              let submitter =
                Thread.create
                  (fun () ->
                    try
                      let cn = Client.connect ~socket in
                      List.iter
                        (fun case -> ignore (Client.submit cn ~case))
                        names;
                      Client.close cn
                    with _ -> ())
                  ()
              in
              Thread.delay 0.6;
              let u1 = count_units () in
              Unix.kill pid1 Sys.sigkill;
              reap pid1;
              Thread.join submitter;
              let pid2 = spawn ~resume:true ~job_delay_s:0. in
              if not (Client.wait_ready ~socket ()) then begin
                (try Unix.kill pid2 Sys.sigkill with _ -> ());
                reap pid2;
                Error "the resumed daemon never answered a ping"
              end
              else begin
                let cn = Client.connect ~socket in
                let submit_all check =
                  List.fold_left
                    (fun acc case ->
                      let* () = acc in
                      match Client.submit cn ~case with
                      | Error e ->
                        Error
                          (Fmt.str "%s after resume: %a" case
                             Client.pp_submit_error e)
                      | Ok v -> check case v)
                    (Ok ()) names
                in
                (* drain the daemon whatever happened, so the child is
                   reaped and the socket unlinked *)
                let finishing r =
                  ignore (Client.drain cn);
                  Client.close cn;
                  match (Unix.waitpid [] pid2, r) with
                  | (_, Unix.WEXITED 0), _ | _, Error _ -> r
                  | (_, st), Ok _ ->
                    let show = function
                      | Unix.WEXITED n -> Fmt.str "exited %d" n
                      | Unix.WSIGNALED s -> Fmt.str "killed by signal %d" s
                      | Unix.WSTOPPED s -> Fmt.str "stopped by signal %d" s
                    in
                    Error
                      (Fmt.str "resumed daemon did not drain cleanly (%s)"
                         (show st))
                in
                finishing
                  (let* () =
                     submit_all (fun case v ->
                         match List.assoc_opt case expects with
                         | Some expect when canon v.Client.v_frame = expect ->
                           Ok ()
                         | Some _ ->
                           Error
                             (Fmt.str
                                "%s: resumed verdict differs from baseline"
                                case)
                         | None -> Error (case ^ ": no baseline"))
                   in
                   let u2 = count_units () in
                   if u2 < u1 then
                     Error
                       (Fmt.str "durable units shrank across the kill: %d -> %d"
                          u1 u2)
                   else
                     let* () =
                       submit_all (fun case v ->
                           if not v.Client.v_memo then
                             Error (case ^ ": repeat submission re-explored")
                           else if v.Client.v_fresh_units <> 0 then
                             Error
                               (Fmt.str "%s: repeat submission added %d units"
                                  case v.Client.v_fresh_units)
                           else Ok ())
                     in
                     Ok
                       (Fmt.str
                          "daemon SIGKILLed mid-run (%d units durable), \
                           resumed verdicts identical to baseline, repeat \
                           pass fully memoized (%d units total)"
                          u1 u2))
              end
            end);
    ]

(* --- syscall-level journal fault injection --------------------------- *)

(* An [io] whose write path raises [err] once [budget] bytes have gone
   through; everything before flows through the real syscalls. *)
let faulty_write_io ~budget ~err =
  let written = ref 0 in
  {
    Journal.io_write =
      (fun fd s pos len ->
        if !written + len > budget then
          raise (Unix.Unix_error (err, "write", "chaos"))
        else begin
          let k = Journal.real_io.Journal.io_write fd s pos len in
          written := !written + k;
          k
        end);
    io_fsync = Journal.real_io.Journal.io_fsync;
    io_rename = Journal.real_io.Journal.io_rename;
  }

(* An [io] whose fsync starts raising EIO after [allow] successes. *)
let faulty_fsync_io ~allow =
  let n = ref 0 in
  {
    Journal.io_write = Journal.real_io.Journal.io_write;
    io_fsync =
      (fun fd ->
        incr n;
        if !n > allow then raise (Unix.Unix_error (Unix.EIO, "fsync", "chaos"))
        else Journal.real_io.Journal.io_fsync fd);
    io_rename = Journal.real_io.Journal.io_rename;
  }

(* An [io] that writes at most [cap] bytes per call — not a fault at
   all, just a kernel the journal's write loop must tolerate. *)
let short_write_io ~cap =
  {
    Journal.io_write =
      (fun fd s pos len ->
        Journal.real_io.Journal.io_write fd s pos (min cap len));
    io_fsync = Journal.real_io.Journal.io_fsync;
    io_rename = Journal.real_io.Journal.io_rename;
  }

let rename_fault_io =
  {
    Journal.io_write = Journal.real_io.Journal.io_write;
    io_fsync = Journal.real_io.Journal.io_fsync;
    io_rename = (fun _ _ -> raise (Unix.Unix_error (Unix.EIO, "rename", "chaos")));
  }

(* A synthetic spec verdict, distinguishable per index so a recovered
   record that was flipped or cross-wired cannot match its original. *)
let enospc_report i =
  {
    Journal.ri_spec = Printf.sprintf "chaos/io-%03d" i;
    ri_params = Printf.sprintf "digest-%03d" i;
    ri_tier = "exhaustive";
    ri_seed = None;
    ri_initial_states = 1;
    ri_outcomes = i + 1;
    ri_diverged = 0;
    ri_complete = true;
    ri_states = (i + 1) * 10;
    ri_failures = [];
    ri_worker_crashes = [];
    ri_budget = None;
  }

(* Append verdicts through [io] until the journal is wounded (or [n]
   records are in), then demand the whole contract: a structured
   [Io_fault] crash, no exception out of any later append, in-memory
   lookups still answering for everything this process appended, and a
   real-io reopen recovering a verbatim prefix — lost records read as
   [None] (re-verify), never as a flipped or phantom verdict. *)
let journal_fault_scenario ~name ~io ~wound_expected ?(after = fun _ -> Ok ())
    ?(n = 50) () =
  outcome Journal_enospc name (fun () ->
      let _, dir = svc_paths "enospc" in
      let j = Journal.openj ~io ~fsync:Journal.Always ~resume:false dir in
      let written = ref [] in
      (let i = ref 0 in
       while !i < n && Journal.io_failure j = None do
         let r = enospc_report !i in
         Journal.append j (Journal.Spec_done r);
         written := r :: !written;
         incr i
       done);
      let written = List.rev !written in
      let* () = after j in
      let fault = Journal.io_failure j in
      let* () =
        match (fault, wound_expected) with
        | Some cr, true when Crash.kind cr = Crash.Io_fault -> Ok ()
        | Some cr, true ->
          Error
            (Fmt.str "wounded with kind %S, wanted io-fault"
               (Crash.kind_name (Crash.kind cr)))
        | None, true -> Error "the injected fault never wounded the journal"
        | None, false -> Ok ()
        | Some cr, false ->
          Error (Fmt.str "unexpected wound: %s" (Crash.message cr))
      in
      (* post-wound appends are disk no-ops, never exceptions, and the
         in-memory index keeps answering for this process *)
      let extra = enospc_report 999 in
      Journal.append j (Journal.Spec_done extra);
      let* () =
        match Journal.verdict_of_digest j ~digest:extra.Journal.ri_params with
        | Some r when r = extra -> Ok ()
        | _ -> Error "in-memory lookup lost a post-fault append"
      in
      let* () =
        List.fold_left
          (fun acc (r : Journal.report_image) ->
            let* () = acc in
            match Journal.verdict_of_digest j ~digest:r.Journal.ri_params with
            | Some r' when r' = r -> Ok ()
            | Some _ ->
              Error (r.Journal.ri_spec ^ ": in-memory verdict flipped")
            | None -> Error (r.Journal.ri_spec ^ ": in-memory verdict lost"))
          (Ok ()) written
      in
      (* an unwounded journal persisted the probe append too *)
      let written = if fault = None then written @ [ extra ] else written in
      Journal.close j;
      (* recovery through the real syscalls: a verbatim prefix *)
      let j2 = Journal.openj ~resume:true dir in
      let recovered =
        List.filter_map
          (function Journal.Spec_done r -> Some r | _ -> None)
          (Journal.recovered j2)
      in
      Journal.close j2;
      let rec prefix = function
        | [], _ -> Ok ()
        | r :: _, [] ->
          Error (r.Journal.ri_spec ^ ": recovered a record never persisted")
        | (r : Journal.report_image) :: rs, w :: ws ->
          if r = w then prefix (rs, ws)
          else Error (r.Journal.ri_spec ^ ": recovered record differs — flipped")
      in
      let* () = prefix (recovered, written) in
      if wound_expected && List.length recovered > List.length written then
        Error "recovered more than was written"
      else if (not wound_expected) && List.length recovered <> List.length written
      then
        Error
          (Fmt.str "lost %d of %d records without any injected fault"
             (List.length written - List.length recovered)
             (List.length written))
      else
        Ok
          (Fmt.str "%d/%d records recovered verbatim%s"
             (List.length recovered) (List.length written)
             (match fault with
             | Some cr -> "; wounded: " ^ Crash.message cr
             | None -> "")))

let run_journal_enospc ?cases () =
  let scenarios =
    [
      ( "enospc-mid-append",
        fun () ->
          journal_fault_scenario ~name:"enospc-mid-append"
            ~io:(faulty_write_io ~budget:2048 ~err:Unix.ENOSPC)
            ~wound_expected:true () );
      ( "eio-write",
        fun () ->
          journal_fault_scenario ~name:"eio-write"
            ~io:(faulty_write_io ~budget:1024 ~err:Unix.EIO)
            ~wound_expected:true () );
      ( "fsync-eio",
        fun () ->
          journal_fault_scenario ~name:"fsync-eio"
            ~io:(faulty_fsync_io ~allow:6) ~wound_expected:true () );
      ( "short-writes",
        fun () ->
          journal_fault_scenario ~name:"short-writes"
            ~io:(short_write_io ~cap:7) ~wound_expected:false ~n:12 () );
      ( "rename-compaction",
        fun () ->
          journal_fault_scenario ~name:"rename-compaction" ~io:rename_fault_io
            ~wound_expected:true ~n:12
            ~after:(fun j ->
              (* writes succeed; only folding the WAL into the snapshot
                 hits the rename fault, which must wound — not corrupt *)
              Journal.compact j;
              if Journal.io_failure j = None then
                Error "compaction's rename fault never wounded the journal"
              else Ok ())
            () );
    ]
  in
  let scenarios =
    (* [cases] names registry rows everywhere else; it selects fault
       scenarios here, and is ignored when it names none of them *)
    match cases with
    | Some names
      when List.exists (fun (n, _) -> List.mem n names) scenarios ->
      List.filter (fun (n, _) -> List.mem n names) scenarios
    | _ -> scenarios
  in
  List.map (fun (_, f) -> f ()) scenarios

(* --- client-side partition and retry --------------------------------- *)

(* A tiny Unix-socket proxy: its first connection is forwarded only up
   to the daemon's ack frame, then held until [wait_complete] says the
   job's verdict is journaled, then severed mid-stream; every later
   connection is a transparent pass-through.  The client sees a
   partition in exactly the window where the server finished the work
   but the verdict frame was lost — the idempotent-retry story. *)
let partition_proxy ~front ~back ~wait_complete =
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX front);
  Unix.listen srv 8;
  let pump src dst =
    let buf = Bytes.create 4096 in
    let rec go () =
      match Unix.read src buf 0 (Bytes.length buf) with
      | 0 -> ()
      | k ->
        let rec put off =
          if off < k then put (off + Unix.write dst buf off (k - off))
        in
        put 0;
        go ()
      | exception Unix.Unix_error _ -> ()
    in
    (try go () with _ -> ());
    try Unix.shutdown dst Unix.SHUTDOWN_SEND with _ -> ()
  in
  (* byte-at-a-time up to the first newline, so the verdict can never
     ride the same read as the ack *)
  let pump_first_line_then_cut src dst =
    let b = Bytes.create 1 in
    let rec go () =
      match Unix.read src b 0 1 with
      | 0 -> ()
      | _ ->
        ignore (Unix.write dst b 0 1);
        if Bytes.get b 0 <> '\n' then go ()
    in
    (try go () with _ -> ());
    wait_complete ();
    (try Unix.close src with _ -> ());
    try Unix.close dst with _ -> ()
  in
  let nconn = ref 0 in
  let stopping = ref false in
  let accept_loop () =
    let rec go () =
      match Unix.accept srv with
      | exception _ -> ()
      | cfd, _ ->
        if !stopping then ( try Unix.close cfd with _ -> ())
        else begin
          incr nconn;
          let first = !nconn = 1 in
          (match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
          | exception _ -> ( try Unix.close cfd with _ -> ())
          | bfd -> (
            match Unix.connect bfd (Unix.ADDR_UNIX back) with
            | exception _ ->
              (try Unix.close cfd with _ -> ());
              (try Unix.close bfd with _ -> ())
            | () ->
              ignore (Thread.create (fun () -> pump cfd bfd) ());
              if first then
                ignore
                  (Thread.create
                     (fun () -> pump_first_line_then_cut bfd cfd)
                     ())
              else ignore (Thread.create (fun () -> pump bfd cfd) ())));
          go ()
        end
    in
    go ()
  in
  let th = Thread.create accept_loop () in
  let stop () =
    stopping := true;
    (* a blocked [accept] is not woken by closing its fd from another
       thread — poke it with a throwaway connection instead *)
    (try
       let w = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect w (Unix.ADDR_UNIX front) with _ -> ());
       try Unix.close w with _ -> ()
     with _ -> ());
    Thread.join th;
    (try Unix.close srv with _ -> ());
    try Unix.unlink front with _ -> ()
  in
  stop

(* The retrying client against a partition: the first attempt loses its
   verdict frame mid-stream after the server already journaled it; the
   retry must reconnect, resubmit idempotently (same params digest) and
   be served from the journal memo — same canonical verdict, one
   exploration total. *)
let run_client_retry_partition ?cases () =
  List.map
    (fun c ->
      let name = c.Registry.c_name in
      outcome Client_retry_partition name (fun () ->
          let expect = baseline_canon c in
          with_server ~tag:"part" ~job_delay_s:0.2 (fun ~socket ~dir ->
              let front = socket ^ ".part" in
              let spec = "job/" ^ name in
              let wait_complete () =
                (* sever only after the verdict is durably journaled as
                   a memoizable record, so the retry window is exactly
                   "server finished, client never heard" *)
                let deadline = Unix.gettimeofday () +. 20. in
                let rec poll () =
                  let records, _ = Journal.read dir in
                  let done_ =
                    List.exists
                      (function
                        | Journal.Spec_done ri ->
                          ri.Journal.ri_spec = spec
                          && ri.Journal.ri_tier = "service"
                        | _ -> false)
                      records
                  in
                  if done_ || Unix.gettimeofday () > deadline then ()
                  else begin
                    Thread.delay 0.05;
                    poll ()
                  end
                in
                poll ()
              in
              let stop = partition_proxy ~front ~back:socket ~wait_complete in
              Fun.protect ~finally:stop (fun () ->
                  match
                    Client.submit_retry ~retries:3 ~retry_budget_s:60.
                      ~attempt_timeout_s:30. ~backoff_base_s:0.05
                      ~socket:front ~case:name ()
                  with
                  | Error e ->
                    Error
                      (Fmt.str "retrying submit failed: %a"
                         Client.pp_submit_error e)
                  | Ok rv ->
                    let v = rv.Client.rv_verdict in
                    if rv.Client.rv_attempts < 2 then
                      Error
                        "the partition never forced a retry (one attempt \
                         sufficed)"
                    else if not v.Client.v_memo then
                      Error
                        "the retry re-explored: resubmission was not \
                         idempotent on the params digest"
                    else if canon v.Client.v_frame <> expect then
                      Error "retried verdict differs from the baseline"
                    else if rv.Client.rv_backoff_s <= 0. then
                      Error "no backoff was recorded between attempts"
                    else
                      Ok
                        (Fmt.str
                           "verdict frame cut mid-stream; attempt %d served \
                            from the memo after %.2fs of backoff, verdict \
                            identical to baseline"
                           rv.Client.rv_attempts rv.Client.rv_backoff_s)))))
    (service_cases ?cases ~default:[ "CAS-lock" ] ())

(* --- overload flood --------------------------------------------------- *)

(* Saturate a small-queue daemon and demand graceful degradation with
   every promise kept: bronze shed with a structured reason, gold
   admitted but demoted (verdict marked [degraded]), the memo fast lane
   never shed, shed decisions journaled, and — the phantom-verdict
   guard — a post-flood gold resubmission re-exploring at full QoS to
   exactly the baseline verdict instead of reusing the demoted one. *)
let run_service_overload_flood ?cases () =
  List.map
    (fun c ->
      let name = c.Registry.c_name in
      outcome Service_overload_flood name (fun () ->
          let others =
            [
              Registry.find "CG increment";
              Registry.find "Ticketed lock";
              Registry.find "Pair snapshot";
              Registry.find "CG allocator";
            ]
            |> List.concat_map Option.to_list
            |> List.filter (fun o -> o.Registry.c_name <> name)
          in
          match others with
          | demote :: f1 :: f2 :: _ ->
            let fillers = [ f1; f2 ] in
            let demote_name = demote.Registry.c_name in
            let expect_demote = baseline_canon demote in
            with_server ~tag:"flood" ~job_delay_s:0.4 ~queue_bound:8
              ~overload_high:1 ~overload_low:0 (fun ~socket ~dir ->
                (* prime the memo fast lane before any pressure *)
                let c0 = Client.connect ~socket in
                let* _ =
                  Result.map_error
                    (fun e -> Fmt.str "priming submit: %a" Client.pp_submit_error e)
                    (Client.submit ~timeout_s:60. c0 ~case:name)
                in
                Client.close c0;
                (* flood: distinct bronze jobs pile onto the 1-job
                   executor (each holds it 0.4s+), pushing the cold
                   queue past the high watermark *)
                let filler_conns =
                  List.map
                    (fun f ->
                      let cn = Client.connect ~socket in
                      Client.send cn
                        (Protocol.Submit
                           { case = f.Registry.c_name; qos = Protocol.Bronze });
                      ignore (Client.read_frame ~timeout_s:10. cn);
                      cn)
                    fillers
                in
                let cleanup () = List.iter Client.abandon filler_conns in
                (* a filler resubmitted under pressure: bronze has no
                   lower rung, so it must shed with a structured reason *)
                let shed_probe = Client.connect ~socket in
                let shed_res =
                  Client.submit ~qos:Protocol.Bronze ~timeout_s:10. shed_probe
                    ~case:name
                in
                Client.close shed_probe;
                let* shed_reason =
                  match shed_res with
                  | Error (Client.Shed reason) -> Ok reason
                  | Ok _ ->
                    cleanup ();
                    Error "bronze was admitted under overload, not shed"
                  | Error e ->
                    cleanup ();
                    Error
                      (Fmt.str "bronze under overload: wanted a shed, got %a"
                         Client.pp_submit_error e)
                in
                (* the memo fast lane answers even under pressure *)
                let memo_conn = Client.connect ~socket in
                let memo_res =
                  Client.submit ~timeout_s:60. memo_conn ~case:name
                in
                Client.close memo_conn;
                let* () =
                  match memo_res with
                  | Ok v when v.Client.v_memo -> Ok ()
                  | Ok _ ->
                    cleanup ();
                    Error "memo-known submission re-explored under overload"
                  | Error e ->
                    cleanup ();
                    Error
                      (Fmt.str "memo fast lane was shed under overload: %a"
                         Client.pp_submit_error e)
                in
                (* gold during overload: admitted, demoted one rung,
                   verdict explicitly marked degraded *)
                let gold_conn = Client.connect ~socket in
                let gold_res =
                  Client.submit ~timeout_s:120. gold_conn ~case:demote_name
                in
                Client.close gold_conn;
                let* () =
                  match gold_res with
                  | Error e ->
                    cleanup ();
                    Error
                      (Fmt.str "gold under overload failed: %a"
                         Client.pp_submit_error e)
                  | Ok v -> (
                    match
                      Option.bind
                        (Json.member "degraded" v.Client.v_frame)
                        Json.to_bool
                    with
                    | Some true -> Ok ()
                    | _ ->
                      cleanup ();
                      Error
                        "gold verdict under overload was not marked degraded")
                in
                (* let the flood drain, then the phantom-verdict guard:
                   a fresh gold submission must re-explore at full QoS —
                   the demoted verdict is never served from the memo *)
                let fresh_conn = Client.connect ~socket in
                let fresh_res =
                  Client.submit ~timeout_s:120. fresh_conn ~case:demote_name
                in
                let* () =
                  match fresh_res with
                  | Error e ->
                    cleanup ();
                    Client.close fresh_conn;
                    Error
                      (Fmt.str "post-flood gold resubmit failed: %a"
                         Client.pp_submit_error e)
                  | Ok v ->
                    if v.Client.v_memo then begin
                      cleanup ();
                      Client.close fresh_conn;
                      Error
                        "a demoted verdict was served from the memo — a \
                         phantom full-QoS verdict"
                    end
                    else if canon v.Client.v_frame <> expect_demote then begin
                      cleanup ();
                      Client.close fresh_conn;
                      Error
                        "post-flood full-QoS verdict differs from the \
                         baseline"
                    end
                    else Ok ()
                in
                (* shed decisions are journaled and surfaced in health *)
                let health = Client.health fresh_conn in
                Client.close fresh_conn;
                cleanup ();
                let* shed_total =
                  match health with
                  | Error e ->
                    Error (Fmt.str "health probe: %a" Client.pp_submit_error e)
                  | Ok frame -> (
                    match
                      Option.bind (Json.member "shed_total" frame) Json.to_int
                    with
                    | Some n when n >= 1 -> Ok n
                    | Some n ->
                      Error (Fmt.str "health shed_total = %d after a shed" n)
                    | None -> Error "health frame lacks shed_total")
                in
                let records, _ = Journal.read dir in
                let journaled_sheds =
                  List.exists
                    (function
                      | Journal.Spec_done ri ->
                        ri.Journal.ri_tier = "service-shed"
                      | _ -> false)
                    records
                in
                if not journaled_sheds then
                  Error "no shed decision was journaled"
                else
                  Ok
                    (Fmt.str
                       "bronze shed (%s), memo fast lane served, gold \
                        demoted with degraded=true, post-flood resubmit \
                        re-explored to baseline, %d sheds journaled"
                       shed_reason shed_total))
          | _ -> Error "not enough registry cases to build a flood"))
    (service_cases ?cases ~default:[ "CAS-lock" ] ())

(* --- supervised daemon, SIGKILLed repeatedly -------------------------- *)

let read_pidfile path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let pid = try int_of_string (String.trim (input_line ic)) with _ -> 0 in
    close_in ic;
    if pid > 0 then Some pid else None

(* kill -9 the daemon under a supervisor, twice, and demand the full
   self-healing story: the supervisor restarts a resumed child within
   the backoff budget, verdicts stay baseline-identical across both
   deaths, and a SIGTERM to the supervisor drains the child gracefully
   and propagates its clean exit.  Forks real processes, so — like
   [Service_kill9] — it reports skipped wherever a domain was already
   spawned (the test binary). *)
let run_service_supervisor_kill ?cases () =
  let cs = service_cases ?cases ~default:[ "CAS-lock"; "Pair snapshot" ] () in
  match cs with
  | [] -> []
  | _ ->
    let names = List.map (fun c -> c.Registry.c_name) cs in
    [
      outcome Service_supervisor_kill (String.concat ", " names) (fun () ->
          Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
          let expects =
            List.map (fun c -> (c.Registry.c_name, baseline_canon c)) cs
          in
          let socket, dir = svc_paths "supkill" in
          Journal.close (Journal.openj ~resume:false dir);
          let pidfile = Filename.concat dir "daemon.pid" in
          let fork_supervisor () =
            flush stdout;
            flush stderr;
            match Unix.fork () with
            | 0 ->
              (* the supervisor process: its spawn forks daemon
                 children; every restart resumes from the journal *)
              let spawn ~restart =
                flush stdout;
                flush stderr;
                match Unix.fork () with
                | 0 ->
                  let code =
                    match
                      Server.run
                        (Server.create
                           (Server.config ~resume:restart
                              ~fsync:Journal.Always ~job_delay_s:0.3 ~socket
                              ~journal_dir:dir ()))
                    with
                    | () -> 0
                    | exception _ -> 10
                  in
                  Unix._exit code
                | pid -> pid
              in
              Unix._exit
                (Fcsl_service.Supervisor.run
                   (Fcsl_service.Supervisor.config ~restart_limit:5
                      ~window_s:60. ~backoff_base_s:0.05 ~pidfile ())
                   ~spawn)
            | pid -> pid
          in
          match fork_supervisor () with
          | exception Failure msg when str_contains msg "fork" ->
            Ok (Fmt.str "skipped: fork unavailable (%s)" msg)
          | sup ->
            let cleanup_on_error () =
              (try Unix.kill sup Sys.sigkill with _ -> ());
              try ignore (Unix.waitpid [] sup) with _ -> ()
            in
            let fail msg =
              cleanup_on_error ();
              Error msg
            in
            let await_pid ?(not_this = 0) () =
              let deadline = Unix.gettimeofday () +. 20. in
              let rec go () =
                match read_pidfile pidfile with
                | Some p when p <> not_this -> Some p
                | _ ->
                  if Unix.gettimeofday () > deadline then None
                  else begin
                    Thread.delay 0.05;
                    go ()
                  end
              in
              go ()
            in
            if not (Client.wait_ready ~socket ()) then
              fail "the supervised daemon never answered a ping"
            else begin
              match await_pid () with
              | None -> fail "the supervisor never wrote a pidfile"
              | Some pid1 ->
                (* work in flight when the first SIGKILL lands *)
                let submitter =
                  Thread.create
                    (fun () ->
                      try
                        let cn = Client.connect ~socket in
                        List.iter
                          (fun case -> ignore (Client.submit cn ~case))
                          names;
                        Client.close cn
                      with _ -> ())
                    ()
                in
                Thread.delay 0.6;
                (try Unix.kill pid1 Sys.sigkill with _ -> ());
                let restarted kill_n old =
                  match await_pid ~not_this:old () with
                  | None ->
                    Error
                      (Fmt.str
                         "no restart within budget after SIGKILL #%d" kill_n)
                  | Some p ->
                    if Client.wait_ready ~timeout_s:20. ~socket () then Ok p
                    else
                      Error
                        (Fmt.str
                           "restarted child after SIGKILL #%d never became \
                            ready"
                           kill_n)
                in
                let result =
                  let* pid2 = restarted 1 pid1 in
                  Thread.delay 0.2;
                  (try Unix.kill pid2 Sys.sigkill with _ -> ());
                  let* pid3 = restarted 2 pid2 in
                  ignore pid3;
                  Thread.join submitter;
                  (* verdicts across two deaths: baseline-identical *)
                  let cn = Client.connect ~socket in
                  let verdicts =
                    List.fold_left
                      (fun acc case ->
                        let* () = acc in
                        match Client.submit ~timeout_s:120. cn ~case with
                        | Error e ->
                          Error
                            (Fmt.str "%s after two SIGKILLs: %a" case
                               Client.pp_submit_error e)
                        | Ok v -> (
                          match List.assoc_opt case expects with
                          | Some expect when canon v.Client.v_frame = expect ->
                            Ok ()
                          | Some _ ->
                            Error
                              (Fmt.str
                                 "%s: verdict differs from baseline after \
                                  the restarts"
                                 case)
                          | None -> Error (case ^ ": no baseline")))
                      (Ok ()) names
                  in
                  let* () = verdicts in
                  let* () =
                    match Client.health cn with
                    | Error e ->
                      Error
                        (Fmt.str "health probe after restarts: %a"
                           Client.pp_submit_error e)
                    | Ok frame -> (
                      match
                        Option.bind (Json.member "uptime_s" frame)
                          Json.to_float
                      with
                      | Some u when u >= 0. -> Ok ()
                      | _ -> Error "health frame lacks a numeric uptime_s")
                  in
                  Client.close cn;
                  (* graceful end: SIGTERM to the supervisor forwards to
                     the child, which drains; the clean exit propagates *)
                  (try Unix.kill sup Sys.sigterm with _ -> ());
                  let rec reap () =
                    match Unix.waitpid [] sup with
                    | _, st -> st
                    | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
                  in
                  match reap () with
                  | Unix.WEXITED 0 ->
                    Ok
                      (Fmt.str
                         "child SIGKILLed twice, restarted within budget \
                          each time; verdicts identical to baseline; \
                          SIGTERM drained gracefully (exit 0)")
                  | Unix.WEXITED n ->
                    Error (Fmt.str "supervisor exited %d after SIGTERM" n)
                  | Unix.WSIGNALED s ->
                    Error (Fmt.str "supervisor killed by signal %d" s)
                  | Unix.WSTOPPED s ->
                    Error (Fmt.str "supervisor stopped by signal %d" s)
                in
                (match result with
                | Ok _ -> ()
                | Error _ -> cleanup_on_error ());
                result
            end);
      outcome Service_supervisor_kill "crash-loop gives up" (fun () ->
          let _, dir = svc_paths "supgiveup" in
          (try Unix.mkdir dir 0o755
           with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          let pidfile = Filename.concat dir "daemon.pid" in
          let fork_supervisor () =
            flush stdout;
            flush stderr;
            match Unix.fork () with
            | 0 ->
              (* every child dies immediately: the sliding failure
                 window must fill and the supervisor must give up with
                 its stable exit code, not restart forever *)
              let spawn ~restart:_ =
                flush stdout;
                flush stderr;
                match Unix.fork () with
                | 0 -> Unix._exit 9
                | pid -> pid
              in
              Unix._exit
                (Fcsl_service.Supervisor.run
                   (Fcsl_service.Supervisor.config ~restart_limit:3
                      ~window_s:60. ~backoff_base_s:0.02 ~pidfile ())
                   ~spawn)
            | pid -> pid
          in
          match fork_supervisor () with
          | exception Failure msg when str_contains msg "fork" ->
            Ok (Fmt.str "skipped: fork unavailable (%s)" msg)
          | sup ->
            let deadline = Unix.gettimeofday () +. 20. in
            let rec reap () =
              match Unix.waitpid [ Unix.WNOHANG ] sup with
              | 0, _ ->
                if Unix.gettimeofday () > deadline then begin
                  (try Unix.kill sup Sys.sigkill with _ -> ());
                  (try ignore (Unix.waitpid [] sup) with _ -> ());
                  Error
                    "the supervisor kept restarting a crash-looping child \
                     past its budget"
                end
                else begin
                  Thread.delay 0.05;
                  reap ()
                end
              | _, Unix.WEXITED n
                when n = Fcsl_service.Supervisor.exit_gave_up ->
                Ok
                  (Fmt.str
                     "crash-looping child (exit 9 on every spawn): the \
                      supervisor gave up with stable exit code %d after 3 \
                      failures in the window"
                     n)
              | _, Unix.WEXITED n ->
                Error
                  (Fmt.str "supervisor exited %d, wanted exit_gave_up %d" n
                     Fcsl_service.Supervisor.exit_gave_up)
              | _, Unix.WSIGNALED s ->
                Error (Fmt.str "supervisor killed by signal %d" s)
              | _, Unix.WSTOPPED s ->
                Error (Fmt.str "supervisor stopped by signal %d" s)
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
            in
            reap ());
    ]

(* --- drivers -------------------------------------------------------- *)

let run ?cases ?(seed = 1) mode : outcome list =
  match mode with
  | Pool_transient -> run_absorbed Pool_transient transient_hook ?cases ()
  | Mid_explore -> run_absorbed Mid_explore mid_explore_hook ?cases ()
  | Pool_persistent -> run_persistent ?cases ()
  | Budget_starve -> run_starve ?cases ~seed ()
  | Spurious_cas -> run_spurious_cas ~seed ()
  | Transient_unsafe -> run_transient_unsafe ~seed ()
  | Env_burst -> run_env_burst ~seed ()
  | Kill9_midrun -> run_kill9 ?cases ~seed ()
  | Service_client_kill -> run_service_client_kill ?cases ()
  | Service_torn_frames -> run_service_torn_frames ?cases ()
  | Service_kill9 -> run_service_kill9 ?cases ()
  | Service_supervisor_kill -> run_service_supervisor_kill ?cases ()
  | Service_overload_flood -> run_service_overload_flood ?cases ()
  | Journal_enospc -> run_journal_enospc ?cases ()
  | Client_retry_partition -> run_client_retry_partition ?cases ()

let run_all ?cases ?(seed = 1) () =
  List.concat_map (run ?cases ~seed) all_modes
