(* Regeneration of the paper's evaluation artifacts:

   - Table 1: per-program statistics — Libs/Conc/Acts/Stab/Main/Total
     line counts from the tagged sources, and the "Build" column
     reproduced as the wall-clock time of the program's mechanized
     verification.
   - Table 2: which primitive concurroids each program employs
     (with the interchangeable-lock "L" marks).
   - Figure 5: the dependency diagram between the verified libraries. *)

open Fcsl_core

(* Table 1. *)

type row1 = {
  r_name : string;
  r_counts : Loc_stats.counts;
  r_verify_time : float; (* seconds; the Build-time analogue *)
  r_reports : Verify.report list;
}

let table1_row (c : Registry.case) : row1 =
  let counts = Loc_stats.counts_of_case c in
  let t0 = Unix.gettimeofday () in
  let reports = c.c_verify () in
  let t1 = Unix.gettimeofday () in
  { r_name = c.c_name; r_counts = counts; r_verify_time = t1 -. t0;
    r_reports = reports }

(* Rows are independent verification runs, so they fan out over a
   domain pool; per-row times remain meaningful (each row runs on one
   domain), the total wall clock shrinks. *)
let table1 ?(jobs = 1) () = Pool.map ~jobs table1_row Registry.all

let pp_time ppf t =
  if t < 1.0 then Fmt.pf ppf "%4.0fms" (t *. 1000.)
  else Fmt.pf ppf "%5.1fs" t

(* The worst degradation tier across a row's reports: a row is only as
   trustworthy as its weakest verdict (Sampled < Pruned < Exhaustive). *)
let row_tier (r : row1) : Verify.tier =
  let rank = function
    | Verify.Exhaustive -> 0
    | Verify.Pruned -> 1
    | Verify.Sampled -> 2
  in
  List.fold_left
    (fun worst rep ->
      if rank rep.Verify.tier > rank worst then rep.Verify.tier else worst)
    Verify.Exhaustive r.r_reports

(* Configurations explored across a row's reports — the column that
   makes reductions visible: with --por the verdicts must not move but
   States must shrink. *)
let row_states (r : row1) : int =
  List.fold_left (fun acc rep -> acc + rep.Verify.states) 0 r.r_reports

(* The exploration counters aggregated across a row's reports (memo
   hits/misses and sleep skips sum, bucket depth maxes, minor words
   sum); [None] when every report lacks counters (sampled or
   journal-replayed verdicts). *)
let row_expl (r : row1) : Verify.expl_stats option =
  List.fold_left
    (fun acc rep -> Verify.merge_expl acc rep.Verify.expl)
    None r.r_reports

let pp_table1 ppf rows =
  Fmt.pf ppf "%-14s %5s %5s %5s %5s %5s %6s %8s %9s %-10s %s@." "Program"
    "Libs" "Conc" "Acts" "Stab" "Main" "Total" "Verify" "States" "Tier"
    "Status";
  List.iter
    (fun r ->
      let c = r.r_counts in
      let dash n = if n = 0 then "-" else string_of_int n in
      let ok = List.for_all Verify.ok r.r_reports in
      let degraded = List.exists Verify.degraded r.r_reports in
      Fmt.pf ppf "%-14s %5s %5s %5s %5s %5s %6d %a %9d %-10s %s@." r.r_name
        (dash c.Loc_stats.libs) (dash c.Loc_stats.conc)
        (dash c.Loc_stats.acts) (dash c.Loc_stats.stab)
        (dash c.Loc_stats.main) (Loc_stats.total c) pp_time r.r_verify_time
        (row_states r)
        (Verify.tier_name (row_tier r))
        (if not ok then "FAILED"
         else if degraded then "DEGRADED"
         else "verified"))
    rows;
  if List.exists (fun r -> row_tier r <> Verify.Exhaustive) rows then
    Fmt.pf ppf
      "(mixed tiers: rows below exhaustive carry budget-degraded \
       verdicts — see docs/ROBUSTNESS.md)@."

(* The --stats companion table: the always-on exploration counters per
   row, for eyeballing where memoization and POR actually bite.  A
   separate printer (not an option on [pp_table1]) because the plain
   table is passed around as a first-class [%a] value. *)
let pp_table1_stats ppf rows =
  Fmt.pf ppf "%-14s %10s %10s %10s %7s %12s@." "Program" "MemoHit" "MemoMiss"
    "SleepSkip" "Bucket" "MinorWords";
  List.iter
    (fun r ->
      match row_expl r with
      | None -> Fmt.pf ppf "%-14s %10s %10s %10s %7s %12s@." r.r_name "-" "-"
                  "-" "-" "-"
      | Some x ->
        Fmt.pf ppf "%-14s %10d %10d %10d %7d %12.0f@." r.r_name
          x.Verify.x_memo_hits x.Verify.x_memo_misses x.Verify.x_sleep_skips
          x.Verify.x_max_bucket x.Verify.x_minor_words)
    rows

(* Table 2. *)

let columns =
  Registry.
    [ Priv; CLock; TLock; Read_pair; Treiber; Span_tree; Flat_combine ]

let column_header = function
  | Registry.Priv -> "Priv"
  | Registry.CLock -> "CLock"
  | Registry.TLock -> "TLock"
  | Registry.Read_pair -> "Pair"
  | Registry.Treiber -> "Treib"
  | Registry.Span_tree -> "Span"
  | Registry.Flat_combine -> "FComb"
  | Registry.Lock_interface -> "L"

(* A cell is "x" for direct use, "L" for use of either lock through the
   abstract interface, blank otherwise. *)
let cell uses col =
  match col with
  | Registry.CLock | Registry.TLock ->
    if List.mem col uses then "x"
    else if List.mem Registry.Lock_interface uses then "L"
    else ""
  | _ -> if List.mem col uses then "x" else ""

let pp_table2 ppf () =
  Fmt.pf ppf "%-14s" "Program";
  List.iter (fun col -> Fmt.pf ppf " %5s" (column_header col)) columns;
  Fmt.pf ppf "@.";
  List.iter
    (fun (c : Registry.case) ->
      let uses = Registry.transitive_uses c in
      Fmt.pf ppf "%-14s" c.Registry.c_name;
      List.iter (fun col -> Fmt.pf ppf " %5s" (cell uses col)) columns;
      Fmt.pf ppf "@.")
    Registry.all

(* The paper's Table 2, for the shape comparison in EXPERIMENTS.md. *)
let paper_table2 : (string * string list) list =
  [
    ("CAS-lock", [ "Priv"; "CLock" ]);
    ("Ticketed lock", [ "Priv"; "TLock" ]);
    ("CG increment", [ "Priv"; "L" ]);
    ("CG allocator", [ "Priv"; "L" ]);
    ("Pair snapshot", [ "Pair" ]);
    ("Treiber stack", [ "Priv"; "L"; "Treib" ]);
    ("Spanning tree", [ "Priv"; "Span" ]);
    ("Flat combiner", [ "Priv"; "L"; "FComb" ]);
    ("Seq. stack", [ "Priv"; "L"; "Treib" ]);
    ("FC-stack", [ "Priv"; "L"; "FComb" ]);
    ("Prod/Cons", [ "Priv"; "L"; "Treib" ]);
  ]

(* Our matrix rendered in the paper's vocabulary, for equality checking
   against [paper_table2]. *)
let our_table2 () : (string * string list) list =
  List.map
    (fun (c : Registry.case) ->
      let uses = Registry.transitive_uses c in
      let marks =
        List.filter_map
          (fun col ->
            match cell uses col with
            | "x" -> Some (column_header col)
            | "L" -> Some "L"
            | _ -> None)
          columns
      in
      (* collapse the two lock columns' L into one mark, like the paper *)
      let marks = List.sort_uniq String.compare marks in
      (c.Registry.c_name, marks))
    Registry.all

let table2_matches_paper () =
  List.for_all
    (fun (name, marks) ->
      match List.assoc_opt name paper_table2 with
      | Some expected ->
        List.sort String.compare expected = List.sort String.compare marks
      | None -> false)
    (our_table2 ())

(* Figure 5: the dependency diagram. *)

let fig5_edges () =
  Registry.interface_edges
  @ List.concat_map
      (fun (c : Registry.case) ->
        List.map (fun d -> (d, c.Registry.c_name)) c.Registry.c_deps)
      Registry.all

(* The paper's diagram, as (from, to) edges. *)
let paper_fig5 : (string * string) list =
  [
    ("CAS-lock", "Abstract lock");
    ("Ticketed lock", "Abstract lock");
    ("Abstract lock", "CG increment");
    ("Abstract lock", "CG allocator");
    ("CG allocator", "Treiber stack");
    ("Abstract lock", "Flat combiner");
    ("CG allocator", "Flat combiner");
    ("Treiber stack", "Seq. stack");
    ("Treiber stack", "Prod/Cons");
    ("Flat combiner", "FC-stack");
  ]

let fig5_matches_paper () =
  let norm es = List.sort_uniq Stdlib.compare es in
  norm (fig5_edges ()) = norm paper_fig5

let pp_fig5 ppf () =
  Fmt.pf ppf "digraph fcsl_deps {@.";
  List.iter
    (fun (a, b) -> Fmt.pf ppf "  \"%s\" -> \"%s\";@." a b)
    (fig5_edges ());
  Fmt.pf ppf "}@."

let pp_fig5_ascii ppf () =
  List.iter (fun (a, b) -> Fmt.pf ppf "  %-14s --> %s@." a b) (fig5_edges ())
