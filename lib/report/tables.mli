(** Regeneration of the paper's evaluation artifacts: Table 1 (line
    counts + verification times), Table 2 (concurroid reuse, checked for
    equality against the paper's matrix), Figure 5 (the dependency
    diagram, also checked). *)

type row1 = {
  r_name : string;
  r_counts : Loc_stats.counts;
  r_verify_time : float;  (** seconds — the Build-column analogue *)
  r_reports : Fcsl_core.Verify.report list;
}

val table1_row : Registry.case -> row1

val table1 : ?jobs:int -> unit -> row1 list
(** All Table 1 rows; with [jobs > 1] rows are verified in parallel on
    a domain pool (per-row times stay meaningful — each row runs on a
    single domain). *)

val pp_time : Format.formatter -> float -> unit

val row_tier : row1 -> Fcsl_core.Verify.tier
(** The worst degradation tier across a row's reports (Sampled worse
    than Pruned worse than Exhaustive): a row is only as trustworthy as
    its weakest verdict. *)

val row_states : row1 -> int
(** Configurations explored across the row's reports — the States
    column; under [--por] the verdicts must not move but this count
    shrinks. *)

val pp_table1 : Format.formatter -> row1 list -> unit
(** Renders the Tier column from {!row_tier}, a States column from
    {!row_states}, and flags DEGRADED rows; a trailing warning line
    appears when tiers are mixed (some rows verified below
    exhaustive). *)

val row_expl : row1 -> Fcsl_core.Verify.expl_stats option
(** Exploration counters aggregated across the row's reports (see
    {!Fcsl_core.Verify.merge_expl}); [None] when no report carries
    counters. *)

val pp_table1_stats : Format.formatter -> row1 list -> unit
(** The [table1 --stats] companion table: per-row memo hits/misses,
    POR sleep skips, worst memo-bucket depth, and minor-heap allocation
    across the row's explorations.  Rows without counters (sampled or
    replayed verdicts) render dashes. *)

val columns : Registry.concurroid_use list
val column_header : Registry.concurroid_use -> string
val cell : Registry.concurroid_use list -> Registry.concurroid_use -> string
val pp_table2 : Format.formatter -> unit -> unit
val paper_table2 : (string * string list) list
val our_table2 : unit -> (string * string list) list
val table2_matches_paper : unit -> bool

val fig5_edges : unit -> (string * string) list
val paper_fig5 : (string * string) list
val fig5_matches_paper : unit -> bool
val pp_fig5 : Format.formatter -> unit -> unit
val pp_fig5_ascii : Format.formatter -> unit -> unit
