(* The case-study registry: one entry per Table 1 row, recording where
   the implementation lives (for the line-count columns), which
   primitive concurroids it uses (for the Table 2 reuse matrix), its
   library dependencies (for the Figure 5 diagram), and how to verify it
   (for the Build-time analogue). *)

open Fcsl_core

(* The primitive concurroids of Table 2's columns. *)
type concurroid_use =
  | Priv
  | CLock
  | TLock
  | Lock_interface (* either lock, through the abstract interface: "3L" *)
  | Read_pair
  | Treiber
  | Span_tree
  | Flat_combine

let pp_concurroid_use ppf = function
  | Priv -> Fmt.string ppf "Priv"
  | CLock -> Fmt.string ppf "CLock"
  | TLock -> Fmt.string ppf "TLock"
  | Lock_interface -> Fmt.string ppf "Lock(3L)"
  | Read_pair -> Fmt.string ppf "ReadPair"
  | Treiber -> Fmt.string ppf "Treiber"
  | Span_tree -> Fmt.string ppf "SpanTree"
  | Flat_combine -> Fmt.string ppf "FlatCombine"

type case = {
  c_name : string; (* the Table 1 row name *)
  c_file : string; (* tagged source file, relative to the repo root *)
  c_extra_libs : string list; (* whole files attributed to the Libs column *)
  c_uses : concurroid_use list; (* direct concurroid usage *)
  c_deps : string list; (* Figure 5: names of cases this one builds on *)
  c_verify : unit -> Verify.report list; (* the mechanized check *)
}

open Fcsl_casestudies

let cs f = "lib/casestudies/" ^ f

let all : case list =
  [
    {
      c_name = "CAS-lock";
      c_file = cs "caslock.ml";
      c_extra_libs = [];
      c_uses = [ Priv; CLock ];
      c_deps = [];
      c_verify =
        (fun () ->
          (* the lock's own verification is its client-visible triples,
             run through CG increment's counter resource *)
          Cg_incr.Cas.verify ());
    };
    {
      c_name = "Ticketed lock";
      c_file = cs "ticketlock.ml";
      c_extra_libs = [];
      c_uses = [ Priv; TLock ];
      c_deps = [];
      c_verify = (fun () -> Cg_incr.Ticketed.verify ());
    };
    {
      c_name = "CG increment";
      c_file = cs "cg_incr.ml";
      c_extra_libs = [];
      c_uses = [ Priv; Lock_interface ];
      c_deps = [ "Abstract lock" ];
      c_verify =
        (fun () -> Cg_incr.Cas.verify () @ Cg_incr.Ticketed.verify ());
    };
    {
      c_name = "CG allocator";
      c_file = cs "cg_alloc.ml";
      c_extra_libs = [];
      c_uses = [ Priv; Lock_interface ];
      c_deps = [ "Abstract lock" ];
      c_verify =
        (fun () -> Cg_alloc.Cas.verify () @ Cg_alloc.Ticketed.verify ());
    };
    {
      c_name = "Pair snapshot";
      c_file = cs "snapshot.ml";
      c_extra_libs = [];
      c_uses = [ Read_pair ];
      c_deps = [];
      c_verify =
        (fun () ->
          Snapshot.verify ()
          @ [
              (let r = Snapshot.refute_unchecked () in
               if Verify.ok r then
                 { r with Verify.spec_name = "REFUTATION MISSED: " ^ r.Verify.spec_name;
                   failures =
                     [ { Verify.initial = State.empty;
                         crash =
                           Crash.make Crash.Internal_error
                             "injected bug not caught" } ] }
               else { r with Verify.spec_name = "unchecked variant refuted"; failures = [] });
            ]);
    };
    {
      c_name = "Treiber stack";
      c_file = cs "treiber.ml";
      c_extra_libs = [ cs "treiber_alloc.ml" ];
      c_uses = [ Priv; Lock_interface; Treiber ];
      c_deps = [ "CG allocator" ];
      c_verify =
        (fun () ->
          Treiber.verify ()
          @ [ Treiber.verify_push_pop () ]
          @ Treiber_alloc.verify ());
    };
    {
      c_name = "Spanning tree";
      c_file = cs "span.ml";
      c_extra_libs = [ "lib/heap/graph.ml"; cs "graph_catalog.ml" ];
      c_uses = [ Priv; Span_tree ];
      c_deps = [];
      c_verify =
        (fun () ->
          Span.verify_span ~max_nodes:2 () @ Span.verify_span_root ());
    };
    {
      c_name = "Flat combiner";
      c_file = cs "flatcombiner.ml";
      c_extra_libs = [];
      c_uses = [ Priv; Lock_interface; Flat_combine ];
      c_deps = [ "Abstract lock"; "CG allocator" ];
      c_verify = (fun () -> Fc_stack.verify () @ [ Fc_stack.verify_pair () ]);
    };
    {
      c_name = "Seq. stack";
      c_file = cs "stack_clients.ml";
      c_extra_libs = [];
      c_uses = [ Priv; Treiber ];
      c_deps = [ "Treiber stack" ];
      c_verify =
        (fun () ->
          match Stack_clients.verify () with
          | [ seq; _ ] -> [ seq ]
          | rs -> rs);
    };
    {
      c_name = "FC-stack";
      c_file = cs "fc_stack.ml";
      c_extra_libs = [];
      c_uses = [ Priv; Flat_combine ];
      c_deps = [ "Flat combiner" ];
      c_verify = (fun () -> [ Fc_stack.verify_pair () ]);
    };
    {
      c_name = "Prod/Cons";
      c_file = cs "stack_clients.ml";
      c_extra_libs = [];
      c_uses = [ Priv; Treiber ];
      c_deps = [ "Treiber stack" ];
      c_verify =
        (fun () ->
          match Stack_clients.verify () with
          | [ _; pc ] -> [ pc ]
          | rs -> rs);
    };
  ]

let find name = List.find_opt (fun c -> String.equal c.c_name name) all

(* The abstract-lock interface node of Figure 5 (not a Table 1 row). *)
let interface_edges =
  [ ("CAS-lock", "Abstract lock"); ("Ticketed lock", "Abstract lock") ]

(* Transitive concurroid usage (the paper's matrix includes what a
   library inherits from the libraries it builds on). *)
let transitive_uses (c : case) : concurroid_use list =
  let rec go seen name =
    match find name with
    | None -> []
    | Some c ->
      if List.mem name seen then []
      else
        c.c_uses
        @ List.concat_map (go (name :: seen)) c.c_deps
  in
  let direct = c.c_uses @ List.concat_map (go [ c.c_name ]) c.c_deps in
  List.sort_uniq Stdlib.compare direct
