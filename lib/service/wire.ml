(* The one socket-write helper both ends of the NDJSON transport use.

   A Unix socket write may be interrupted (EINTR), may accept only part
   of the buffer (a slow peer, a full send buffer), or may report the
   buffer full outright (EAGAIN/EWOULDBLOCK — the server arms
   SO_SNDTIMEO, under which a stalled peer surfaces exactly this way).
   Erroring on any of those tears a frame mid-line and desynchronizes
   the stream; instead we loop until the full line is on the wire,
   retrying EINTR immediately and waiting for writability on EAGAIN,
   and only a hard error (EPIPE, ECONNRESET, a dead peer past
   [stall_s]) escapes. *)

let stall_s = 10.

exception Stalled

let write_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let deadline = Unix.gettimeofday () +. stall_s in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd data !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* the peer's buffer is full: wait for writability, bounded so a
         peer that never drains can't wedge the writer forever *)
      if Unix.gettimeofday () >= deadline then raise Stalled
      else ignore (Unix.select [] [ fd ] [] 0.25)
  done
