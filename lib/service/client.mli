(** The client side of the service protocol — what [fcsl submit], the
    tests, the bench harness and the chaos modes speak.  Blocking,
    line-framed, one request in flight per connection. *)

open Fcsl_core

type conn

val connect : socket:string -> conn
(** Raises [Unix.Unix_error] when the daemon isn't there. *)

val close : conn -> unit

val abandon : conn -> unit
(** Abrupt teardown mid-stream — from the server's side
    indistinguishable from a SIGKILLed client.  The chaos harness's
    client-kill mode. *)

val send : conn -> Protocol.request -> unit
val send_raw : conn -> string -> unit
(** Write one raw line (no validation) — the torn-frames chaos mode. *)

val read_frame : ?timeout_s:float -> conn -> (Json.t, string) result

val ping : ?timeout_s:float -> conn -> bool

type verdict = {
  v_job : int;
  v_case : string;
  v_status : int;  (** the [Verify.exit_code] taxonomy: 0/1/2/3 *)
  v_memo : bool;  (** served entirely from the journal memo *)
  v_fresh_units : int;  (** durable units this job added *)
  v_cancelled : bool;
  v_frame : Json.t;  (** the full verdict frame *)
}

type submit_error =
  | Shed of string  (** structured overload answer, with its reason *)
  | Server_error of Crash.t
  | Transport of string

val pp_submit_error : Format.formatter -> submit_error -> unit

val submit :
  ?qos:Protocol.qos ->
  ?timeout_s:float ->
  ?on_progress:(int -> unit) ->
  conn ->
  case:string ->
  (verdict, submit_error) result
(** Submit one registry case and block until the terminal frame.
    [on_progress] sees the streamed states counter.  Defaults:
    gold QoS, 600s timeout. *)

val status : ?timeout_s:float -> conn -> (Json.t, submit_error) result
(** The daemon's live status frame: the journal-derived jobs rendering
    (same schema as [fcsl jobs status --json]) plus queue depth and the
    drain flag. *)

val drain : ?timeout_s:float -> conn -> (unit, submit_error) result

val wait_ready : ?timeout_s:float -> socket:string -> unit -> bool
(** Poll until the daemon answers a ping (default 10s). *)
