(** The client side of the service protocol — what [fcsl submit], the
    tests, the bench harness and the chaos modes speak.  Blocking,
    line-framed, one request in flight per connection. *)

open Fcsl_core

type conn

val connect : socket:string -> conn
(** Raises [Unix.Unix_error] when the daemon isn't there. *)

val close : conn -> unit

val abandon : conn -> unit
(** Abrupt teardown mid-stream — from the server's side
    indistinguishable from a SIGKILLed client.  The chaos harness's
    client-kill mode. *)

val send : conn -> Protocol.request -> unit
val send_raw : conn -> string -> unit
(** Write one raw line (no validation) — the torn-frames chaos mode. *)

val read_frame : ?timeout_s:float -> conn -> (Json.t, string) result

val ping : ?timeout_s:float -> conn -> bool

type verdict = {
  v_job : int;
  v_case : string;
  v_status : int;  (** the [Verify.exit_code] taxonomy: 0/1/2/3 *)
  v_memo : bool;  (** served entirely from the journal memo *)
  v_fresh_units : int;  (** durable units this job added *)
  v_cancelled : bool;
  v_frame : Json.t;  (** the full verdict frame *)
}

type submit_error =
  | Shed of string  (** structured overload answer, with its reason *)
  | Server_error of Crash.t
  | Transport of string

val pp_submit_error : Format.formatter -> submit_error -> unit

val submit :
  ?qos:Protocol.qos ->
  ?timeout_s:float ->
  ?on_progress:(int -> unit) ->
  conn ->
  case:string ->
  (verdict, submit_error) result
(** Submit one registry case and block until the terminal frame.
    [on_progress] sees the streamed states counter.  Defaults:
    gold QoS, 600s timeout. *)

val health : ?timeout_s:float -> conn -> (Json.t, submit_error) result
(** The daemon's health frame: uptime, queue depth, in-flight count,
    shed total, memo-hit rate, overload state, journal lag and the
    wounded-journal diagnosis if any (schema: {!Protocol.health_fields}). *)

val ready : ?timeout_s:float -> conn -> (bool, submit_error) result
(** The readiness probe: [Ok true] while the daemon accepts fresh work
    (i.e. it is not draining).  Liveness is the probe answering at
    all. *)

val status : ?timeout_s:float -> conn -> (Json.t, submit_error) result
(** The daemon's live status frame: the journal-derived jobs rendering
    (same schema as [fcsl jobs status --json]) plus queue depth, the
    drain flag and the health fields. *)

type retry_verdict = {
  rv_verdict : verdict;
  rv_attempts : int;  (** 1 = the first attempt succeeded *)
  rv_backoff_s : float;  (** total seconds slept between attempts *)
}

val submit_retry :
  ?qos:Protocol.qos ->
  ?retries:int ->
  ?retry_budget_s:float ->
  ?attempt_timeout_s:float ->
  ?backoff_base_s:float ->
  ?backoff_seed:int ->
  ?on_progress:(int -> unit) ->
  socket:string ->
  case:string ->
  unit ->
  (retry_verdict, submit_error) result
(** Submit with retries: a fresh connection per attempt, jittered
    exponential backoff ([Pool.backoff_delay]) between attempts,
    retrying transport failures and sheds (a supervised daemon may be
    mid-restart; an overloaded one may recover).  Structured server
    errors are deterministic and fail fast.  [retries] (default 3)
    bounds the retries after the first attempt, [retry_budget_s]
    (default 60) the total wall clock including backoff,
    [attempt_timeout_s] (default 600) each attempt.  Resubmission is
    idempotent on the params digest: a retry landing after the first
    attempt completed server-side is served from the journal memo,
    observable as [v_memo = true]. *)

val drain : ?timeout_s:float -> conn -> (unit, submit_error) result

val wait_ready : ?timeout_s:float -> socket:string -> unit -> bool
(** Poll until the daemon answers a ping (default 10s). *)
