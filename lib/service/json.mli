(** A minimal JSON value type with a hand-rolled parser and printer —
    the generic sibling of [Crash.of_json]'s fixed-shape parser, grown
    because the service must read arbitrary client frames.  The engine
    still carries no JSON library dependency.

    Scope: one-line protocol frames.  Integers that fit [int] parse as
    {!Int}; other numbers as {!Float}.  The printer emits the same
    escapes [Crash.to_json] does. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** One-line rendering (no pretty-printing). *)

val parse : string -> (t, string) result
(** Strict parse of a complete value: trailing garbage, bad escapes and
    unescaped control characters are [Error]s. *)

val member : string -> t -> t option
(** Object field lookup; [None] on a non-object. *)

val to_str : t -> string option
val to_int : t -> int option
val to_bool : t -> bool option
val to_float : t -> float option
(** Accepts {!Int} too (a whole-number latency is still a float). *)

val to_list : t -> t list option
