(* A minimal JSON value type with a hand-rolled parser and printer.

   The engine deliberately carries no JSON dependency (see crash.ml,
   which pioneered the recursive-descent idiom this generalizes): the
   service's wire protocol needs to *read* arbitrary client frames, not
   just its own output, so the crash-shaped parser grows into a small
   generic one here.  Scope is exactly what newline-delimited protocol
   frames need — no streaming, no float-precision heroics beyond
   round-tripping what we print. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- Printing ---------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" f)
    else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | Arr vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string b ", ";
        write b v)
      vs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\": ";
        write b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* --- Parsing ----------------------------------------------------------- *)

exception Parse of string

let parse s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let next () =
    if !pos >= len then fail "unexpected end of input";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let skip_ws () =
    while
      !pos < len
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if next () <> c then fail (Printf.sprintf "expected %C" c)
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit in \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 32 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' -> (
        (match next () with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          (* bind each digit: operand evaluation order is unspecified *)
          let d1 = hex (next ()) in
          let d2 = hex (next ()) in
          let d3 = hex (next ()) in
          let d4 = hex (next ()) in
          let cp = ((d1 * 16 + d2) * 16 + d3) * 16 + d4 in
          if cp < 0x80 then Buffer.add_char b (Char.chr cp)
          else if cp < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
          end
        | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ())
      | c when Char.code c < 0x20 -> fail "unescaped control character"
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let parse_literal lit v =
    let n = String.length lit in
    if !pos + n <= len && String.sub s !pos n = lit then begin
      pos := !pos + n;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < len
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some n -> Int n
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some 't' -> parse_literal "true" (Bool true)
    | Some 'f' -> parse_literal "false" (Bool false)
    | Some 'n' -> parse_literal "null" Null
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else
        let rec go acc =
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> go (v :: acc)
          | ']' -> Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        go []
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else
        let rec go acc =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> go ((k, v) :: acc)
          | '}' -> Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        go []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
    | None -> fail "expected a value"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse e -> Error e

(* --- Accessors --------------------------------------------------------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_int = function Int n -> Some n | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr vs -> Some vs | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None
