(** The verification daemon behind [fcsl serve]: a Unix-domain-socket
    server scheduling registry cases on the engine, with journal-backed
    memoized verdicts (see docs/SERVICE.md).

    Concurrency shape: one accept loop, one reader thread per
    connection, one executor thread running jobs sequentially (the
    engine's [with_engine] defaults are process-global; the exploration
    itself fans out over [sc_jobs] domains).  Robustness contract:
    bounded cold queue with structured shed frames, client-disconnect
    cancellation through the budget's cancel probe, crash-safe resume
    from the job ledger, graceful drain on SIGTERM. *)

open Fcsl_core

type config = {
  sc_socket : string;  (** Unix-domain socket path *)
  sc_journal_dir : string;  (** journal directory (WAL + snapshot) *)
  sc_resume : bool;
      (** recover the journal and re-enqueue in-flight ledger jobs *)
  sc_fsync : Journal.fsync_policy option;  (** [None]: journal default *)
  sc_queue_bound : int;
      (** cold-queue capacity; submissions past it are shed.  Memo-known
          submissions bypass the bound — they cost no exploration *)
  sc_jobs : int;  (** domains per exploration (not concurrent jobs) *)
  sc_signals : bool;
      (** install SIGTERM/SIGINT drain handlers (off for in-process
          servers inside tests and the chaos harness) *)
  sc_idle_exit_s : float option;
      (** drain after this long with no connections and no work *)
  sc_job_delay_s : float;
      (** artificial pre-exploration delay per job — the chaos/test
          hook that makes mid-job kills and queue overflow
          deterministic *)
  sc_overload_high : int;
      (** cold-queue depth at which the overload state machine declares
          pressure: bronze submissions shed, gold/silver demoted one
          QoS rung (verdicts marked [degraded]) *)
  sc_overload_low : int;
      (** depth at which pressure is released (hysteresis: strictly
          below [sc_overload_high], so the state can't flap) *)
  sc_rate : (float * int) option;
      (** per-client token bucket [(rate_per_s, burst)]; [None]
          disables rate limiting.  A client past its bucket is answered
          with [shed {"reason": "rate-limited"}] *)
}

val config :
  ?resume:bool ->
  ?fsync:Journal.fsync_policy ->
  ?queue_bound:int ->
  ?jobs:int ->
  ?signals:bool ->
  ?idle_exit_s:float ->
  ?job_delay_s:float ->
  ?overload_high:int ->
  ?overload_low:int ->
  ?rate:float * int ->
  socket:string ->
  journal_dir:string ->
  unit ->
  config
(** Defaults: no resume, journal-default fsync, queue bound 16, 1
    domain, signals installed, no idle exit, no delay, watermarks at
    3/4 and 1/4 of the queue bound, no rate limit. *)

type t

val create : config -> t
(** Open (or recover) the journal and, under [sc_resume], re-enqueue
    the ledger's in-flight jobs as waiter-less keepers. *)

val run : t -> unit
(** Serve until drained: blocks the calling thread through the accept
    loop and returns after the queue is empty, every verdict is
    journaled and the socket is unlinked.  Closes the journal. *)

val drain : t -> unit
(** Stop accepting submissions (they shed with reason ["draining"]),
    finish queued work, then let {!run} return.  Idempotent; also
    triggered by SIGTERM/SIGINT when [sc_signals] is set. *)

val stop : t -> unit
(** Alias of {!drain} — the in-process shutdown used by tests. *)
