(* The verification daemon: accept loop + per-connection reader threads
   + one executor thread, sharing a journal that doubles as the verdict
   memo and the crash-recovery ledger.

   Why a single executor: the Verify engine's defaults ([with_engine])
   are process-global, so two jobs running under different QoS budgets
   concurrently would race on them.  Jobs therefore run one at a time —
   each exploration still fans out over [sc_jobs] domains internally,
   which is where the parallelism that matters lives.  Everything else
   (socket reads, frame writes, status queries) is fully concurrent.

   Robustness invariants, in one place:
   - overload: cold submissions past [sc_queue_bound] get a structured
     shed frame; memo-known submissions are always accepted (serving a
     journaled verdict costs no exploration, so shedding it would be
     degradation for nothing);
   - disconnects: a job whose last waiter hangs up has its budget's
     cancel probe flipped; the exploration winds down cooperatively
     within one tick and the aborted verdict is never journaled;
   - crashes: the job ledger (synthetic "job/CASE" records in the same
     WAL) marks submissions at enqueue; a daemon restarted with
     [sc_resume] re-enqueues exactly the ledger's in-flight entries;
   - drain: SIGTERM (or a drain frame) stops intake, finishes the
     queue, flushes the journal and exits 0. *)

open Fcsl_core
open Fcsl_report

type config = {
  sc_socket : string;
  sc_journal_dir : string;
  sc_resume : bool;
  sc_fsync : Journal.fsync_policy option;
  sc_queue_bound : int;
  sc_jobs : int;
  sc_signals : bool;
  sc_idle_exit_s : float option;
  sc_job_delay_s : float;
}

let config ?(resume = false) ?fsync ?(queue_bound = 16) ?(jobs = 1)
    ?(signals = true) ?idle_exit_s ?(job_delay_s = 0.) ~socket ~journal_dir ()
    =
  {
    sc_socket = socket;
    sc_journal_dir = journal_dir;
    sc_resume = resume;
    sc_fsync = fsync;
    sc_queue_bound = queue_bound;
    sc_jobs = jobs;
    sc_signals = signals;
    sc_idle_exit_s = idle_exit_s;
    sc_job_delay_s = job_delay_s;
  }

(* --- Connections ------------------------------------------------------- *)

type conn = {
  cn_fd : Unix.file_descr;
  cn_mu : Mutex.t;
  mutable cn_alive : bool;
}

(* Frame writes are mutexed per connection (the executor, the progress
   thread and the reader thread all answer on the same socket) and a
   failed write just marks the connection dead: the disconnect path
   owns the cleanup. *)
let send conn line =
  Mutex.lock conn.cn_mu;
  (try
     if conn.cn_alive then begin
       let data = Bytes.of_string (line ^ "\n") in
       let len = Bytes.length data in
       let off = ref 0 in
       while !off < len do
         off := !off + Unix.write conn.cn_fd data !off (len - !off)
       done
     end
   with _ -> conn.cn_alive <- false);
  Mutex.unlock conn.cn_mu

(* --- Jobs -------------------------------------------------------------- *)

type job = {
  jb_id : int;
  jb_case : string;
  jb_qos : Protocol.qos;
  jb_digest : string;
  jb_cached : bool;  (* memo-known at submit: skips the cold queue *)
  jb_keep : bool;  (* resumed from the ledger: runs without waiters *)
  jb_cancel : bool Atomic.t;
  jb_ticks : int Atomic.t;
  mutable jb_state : [ `Queued | `Running | `Done | `Cancelled ];
  mutable jb_waiters : conn list;
}

type t = {
  cfg : config;
  mu : Mutex.t;
  cv : Condition.t;  (* wakes the executor: new work or drain *)
  jrnl : Journal.t;
  mutable cold : job list;  (* FIFO, bounded by sc_queue_bound *)
  mutable fast : job list;  (* memo-known FIFO, never shed *)
  live : (string, job) Hashtbl.t;  (* digest -> queued/running job *)
  mutable next_id : int;
  mutable draining : bool;
  mutable exec_done : bool;
  mutable conns : conn list;
  mutable last_activity : float;
  stop_req : bool Atomic.t;  (* set from the SIGTERM handler *)
}

let ledger_spec case = "job/" ^ case

let is_ledger_spec s =
  String.length s > 4 && String.sub s 0 4 = "job/"

let now () = Unix.gettimeofday ()

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* A ledger record for the job itself, riding the same WAL as the spec
   verdicts.  [tier] distinguishes a finished job ("service") from a
   cancelled one ("service-cancelled"): only the former is a memo hit
   for [Journal.verdict_of_digest], and neither resumes. *)
let ledger_done t job ~tier ~cancelled ~elapsed_s ~states =
  Journal.append t.jrnl
    (Journal.Spec_done
       {
         Journal.ri_spec = ledger_spec job.jb_case;
         ri_params = job.jb_digest;
         ri_tier = tier;
         ri_seed = None;
         ri_initial_states = 0;
         ri_outcomes = 0;
         ri_diverged = 0;
         ri_complete = not cancelled;
         ri_states = states;
         ri_failures = [];
         ri_worker_crashes = [];
         ri_budget =
           (if cancelled then
              Some
                {
                  Journal.bi_elapsed_s = elapsed_s;
                  bi_states = states;
                  bi_major_words = 0;
                  bi_tripped = Some (Budget.reason_name Budget.Cancelled);
                }
            else None);
       });
  Journal.flush t.jrnl

(* Is this digest already served by the journal?  Only a *finished* job
   ledger record counts: a cancelled one must re-explore. *)
let memo_hit t digest =
  match Journal.verdict_of_digest t.jrnl ~digest with
  | Some ri -> ri.Journal.ri_tier = "service"
  | None -> false

(* --- Creation and resume ----------------------------------------------- *)

let mkjob t ~case ~qos ~cached ~keep =
  let id = t.next_id in
  t.next_id <- id + 1;
  {
    jb_id = id;
    jb_case = case;
    jb_qos = qos;
    jb_digest = Protocol.digest ~case ~qos;
    jb_cached = cached;
    jb_keep = keep;
    jb_cancel = Atomic.make false;
    jb_ticks = Atomic.make 0;
    jb_state = `Queued;
    jb_waiters = [];
  }

let create cfg =
  let jrnl =
    Journal.openj ?fsync:cfg.sc_fsync ~resume:cfg.sc_resume cfg.sc_journal_dir
  in
  let t =
    {
      cfg;
      mu = Mutex.create ();
      cv = Condition.create ();
      jrnl;
      cold = [];
      fast = [];
      live = Hashtbl.create 16;
      next_id = 1;
      draining = false;
      exec_done = false;
      conns = [];
      last_activity = now ();
      stop_req = Atomic.make false;
    }
  in
  (* Crash recovery: the ledger's in-flight entries are jobs a previous
     daemon accepted but never finished (and never cancelled — a
     cancelled job writes its terminal record immediately).  Re-enqueue
     them as waiter-less keepers: their clients are gone, but the
     verdicts become durable for everyone who resubmits the digest. *)
  if cfg.sc_resume then begin
    let records, _torn = Journal.read cfg.sc_journal_dir in
    let jobs = Journal.jobs_of_records records in
    List.iter
      (fun (j : Journal.job) ->
        if j.Journal.j_status = `In_flight && is_ledger_spec j.Journal.j_spec
        then
          match
            ( Protocol.case_of_digest j.Journal.j_params,
              Protocol.qos_of_digest j.Journal.j_params )
          with
          | Some case, Some qos when Registry.find case <> None ->
            let job = mkjob t ~case ~qos ~cached:false ~keep:true in
            Hashtbl.replace t.live job.jb_digest job;
            t.cold <- t.cold @ [ job ]
          | _ -> ())
      jobs
  end;
  t

let drain t =
  locked t (fun () ->
      if not t.draining then begin
        t.draining <- true;
        Condition.broadcast t.cv
      end)

let stop t = drain t

(* --- The executor ------------------------------------------------------ *)

let notify_waiters t job frame =
  let waiters = locked t (fun () -> job.jb_waiters) in
  List.iter (fun c -> send c frame) waiters

let run_job t job =
  (* The chaos/test hook: an artificial pre-exploration delay makes
     "kill the client mid-job" and "fill the queue" deterministic.  It
     polls the cancel flag so a dead client doesn't hold the executor
     for the full delay. *)
  let rec delay left =
    if left > 0. && not (Atomic.get job.jb_cancel) then begin
      let step = Float.min 0.02 left in
      Thread.delay step;
      delay (left -. step)
    end
  in
  delay t.cfg.sc_job_delay_s;
  let case =
    match Registry.find job.jb_case with
    | Some c -> c
    | None -> assert false (* submit rejects unknown cases *)
  in
  let lim =
    Protocol.qos_limits
      ~tick_hook:(fun () -> Atomic.incr job.jb_ticks)
      ~cancel:(fun () -> Atomic.get job.jb_cancel)
      job.jb_qos
  in
  (* Progress frames ride a side thread: the tick hook runs on worker
     domains inside the exploration and must stay allocation-trivial,
     so it only bumps an atomic that this thread samples. *)
  let progressing = Atomic.make true in
  let progress_thread =
    Thread.create
      (fun () ->
        let last = ref 0 in
        while Atomic.get progressing do
          Thread.delay 0.25;
          let n = Atomic.get job.jb_ticks in
          if n > !last && Atomic.get progressing then begin
            last := n;
            notify_waiters t job (Protocol.progress ~job:job.jb_id ~states:n)
          end
        done)
      ()
  in
  let started = now () in
  let units0 = Journal.completed_units t.jrnl in
  let outcome =
    try
      Ok
        (Verify.with_engine ~jobs:t.cfg.sc_jobs ~budget:lim
           ~journal:(Some t.jrnl) case.Registry.c_verify)
    with e -> Error (Crash.of_exn e)
  in
  Atomic.set progressing false;
  Thread.join progress_thread;
  let elapsed_s = now () -. started in
  let fresh_units = Journal.completed_units t.jrnl - units0 in
  let frame =
    match outcome with
    | Ok reports ->
      let cancelled = List.exists Verify.cancelled reports in
      (* fresh_units = 0 <=> every spec verdict replayed from the
         journal: the memo proof the tests and CI assert on. *)
      if not cancelled then
        ledger_done t job ~tier:"service" ~cancelled:false ~elapsed_s
          ~states:(Atomic.get job.jb_ticks)
      else
        ledger_done t job ~tier:"service-cancelled" ~cancelled:true ~elapsed_s
          ~states:(Atomic.get job.jb_ticks);
      Protocol.verdict ~job:job.jb_id ~case:job.jb_case ~digest:job.jb_digest
        ~memo:(fresh_units = 0) ~fresh_units ~cancelled ~reports
    | Error crash ->
      (* An exception escaping the engine is an internal error; the
         ledger keeps the job out of the resume set (re-running a
         crasher in a loop would be a restart storm), and the client
         gets the structured crash. *)
      ledger_done t job ~tier:"service-error" ~cancelled:true ~elapsed_s
        ~states:(Atomic.get job.jb_ticks);
      Protocol.error_frame ~job:job.jb_id crash
  in
  (* Mark the job done, unmap it and snapshot the waiters in ONE
     critical section before broadcasting the verdict: a submit racing
     this completion must either attach before the snapshot (and so
     receive the frame below) or find the job gone and take the memo
     path.  Flipping the state after the broadcast leaves a window
     where a freshly-attached waiter is acked but never answered. *)
  let waiters =
    locked t (fun () ->
        job.jb_state <- `Done;
        (* Only unmap the digest if it still maps to this job: a
           cancelled-then-resubmitted digest already points at its
           successor. *)
        (match Hashtbl.find_opt t.live job.jb_digest with
        | Some j when j == job -> Hashtbl.remove t.live job.jb_digest
        | _ -> ());
        t.last_activity <- now ();
        job.jb_waiters)
  in
  List.iter (fun c -> send c frame) waiters

let exec_loop t =
  let rec next () =
    Mutex.lock t.mu;
    let rec wait () =
      if t.fast = [] && t.cold = [] then
        if t.draining then None
        else begin
          Condition.wait t.cv t.mu;
          wait ()
        end
      else
        match t.fast with
        | j :: rest ->
          t.fast <- rest;
          Some j
        | [] -> (
          match t.cold with
          | j :: rest ->
            t.cold <- rest;
            Some j
          | [] -> None)
    in
    let picked = wait () in
    (match picked with
    | Some j when j.jb_state = `Queued -> j.jb_state <- `Running
    | _ -> ());
    Mutex.unlock t.mu;
    match picked with
    | None -> ()
    | Some j ->
      if j.jb_state = `Running then run_job t j;
      next ()
  in
  next ();
  locked t (fun () -> t.exec_done <- true)

(* --- Request handling -------------------------------------------------- *)

let proto_error msg = Crash.make Crash.Protocol_error msg

let submit t conn ~case ~qos =
  let reply =
    locked t (fun () ->
        t.last_activity <- now ();
        if t.draining then Protocol.shed ~reason:"draining" ~queue:(List.length t.cold)
        else if Registry.find case = None then
          Protocol.error_frame (proto_error (Printf.sprintf "unknown case %S" case))
        else begin
          let digest = Protocol.digest ~case ~qos in
          let attachable =
            match Hashtbl.find_opt t.live digest with
            | Some j
              when j.jb_state <> `Done
                   && j.jb_state <> `Cancelled
                   && not (Atomic.get j.jb_cancel) ->
              Some j
            | _ -> None
          in
          match attachable with
          | Some j ->
            (* In-flight dedup: N clients asking for one digest share
               one exploration and all get the same verdict frame. *)
            j.jb_waiters <- conn :: j.jb_waiters;
            Protocol.ack ~job:j.jb_id ~digest ~position:0 ~cached:j.jb_cached
          | None ->
            let cached = memo_hit t digest in
            if
              (not cached)
              && List.length t.cold >= t.cfg.sc_queue_bound
            then Protocol.shed ~reason:"queue-full" ~queue:(List.length t.cold)
            else begin
              let job = mkjob t ~case ~qos ~cached ~keep:false in
              job.jb_waiters <- [ conn ];
              Hashtbl.replace t.live digest job;
              if cached then t.fast <- t.fast @ [ job ]
              else begin
                (* The ledger entry makes the accepted job durable
                   before any exploration starts: a daemon killed right
                   here resumes it. *)
                Journal.append t.jrnl
                  (Journal.Spec_begin
                     { spec = ledger_spec case; params = digest });
                Journal.flush t.jrnl;
                t.cold <- t.cold @ [ job ]
              end;
              Condition.broadcast t.cv;
              Protocol.ack ~job:job.jb_id ~digest
                ~position:(List.length (if cached then t.fast else t.cold))
                ~cached
            end
        end)
  in
  send conn reply

let status_frame t =
  (* Flush so [Journal.read] (which scans the files, not the handle's
     index) sees everything appended so far, then render through the
     same code path as [fcsl jobs status --json]. *)
  Journal.flush t.jrnl;
  let records, _ = Journal.read t.cfg.sc_journal_dir in
  let jobs = Journal.jobs_of_records records in
  let extra =
    locked t (fun () ->
        [
          ("type", Json.Str "status");
          ("queue", Json.Int (List.length t.cold));
          ("fast", Json.Int (List.length t.fast));
          ("draining", Json.Bool t.draining);
        ])
  in
  Protocol.jobs_to_json ~extra jobs

let withdraw_conn_from t conn job =
  job.jb_waiters <- List.filter (fun c -> c != conn) job.jb_waiters;
  if job.jb_waiters = [] && not job.jb_keep then begin
    match job.jb_state with
    | `Queued ->
      (* Never started: drop it from the queue and write the terminal
         ledger record now, so a restart doesn't resurrect a job
         nobody wants. *)
      job.jb_state <- `Cancelled;
      t.cold <- List.filter (fun j -> j != job) t.cold;
      t.fast <- List.filter (fun j -> j != job) t.fast;
      (match Hashtbl.find_opt t.live job.jb_digest with
      | Some j when j == job -> Hashtbl.remove t.live job.jb_digest
      | _ -> ());
      if not job.jb_cached then
        ledger_done t job ~tier:"service-cancelled" ~cancelled:true
          ~elapsed_s:0. ~states:0
    | `Running ->
      (* The budget's cancel probe trips within one tick; the verdict
         is reported cancelled and never journaled. *)
      Atomic.set job.jb_cancel true
    | `Done | `Cancelled -> ()
  end

let cancel t conn ~id =
  locked t (fun () ->
      let found = ref false in
      Hashtbl.iter
        (fun _ job ->
          if job.jb_id = id then begin
            found := true;
            withdraw_conn_from t conn job
          end)
        t.live;
      if !found then
        Json.to_string
          (Json.Obj [ ("type", Json.Str "cancelled"); ("job", Json.Int id) ])
      else Protocol.error_frame (proto_error (Printf.sprintf "unknown job %d" id)))

let disconnect t conn =
  locked t (fun () ->
      conn.cn_alive <- false;
      t.conns <- List.filter (fun c -> c != conn) t.conns;
      Hashtbl.iter (fun _ job -> withdraw_conn_from t conn job) t.live;
      t.last_activity <- now ());
  try Unix.close conn.cn_fd with _ -> ()

let handle_line t conn line =
  match Protocol.parse_request line with
  | Error crash -> send conn (Protocol.error_frame crash)
  | Ok Protocol.Ping -> send conn Protocol.pong
  | Ok Protocol.Status -> send conn (status_frame t)
  | Ok Protocol.Drain ->
    drain t;
    send conn Protocol.drained
  | Ok (Protocol.Cancel id) -> send conn (cancel t conn ~id)
  | Ok (Protocol.Submit { case; qos }) -> submit t conn ~case ~qos

(* A line cap keeps one hostile client from ballooning the daemon's
   memory: past it the frame is answered with a protocol error and the
   connection is dropped. *)
let max_line = 1 lsl 20

let conn_loop t conn =
  let chunk = Bytes.create 4096 in
  let pending = ref "" in
  let overlong = ref false in
  let rec go () =
    match Unix.read conn.cn_fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      pending := !pending ^ Bytes.sub_string chunk 0 n;
      let rec split () =
        match String.index_opt !pending '\n' with
        | Some i ->
          let line = String.sub !pending 0 i in
          pending := String.sub !pending (i + 1) (String.length !pending - i - 1);
          if String.trim line <> "" then handle_line t conn line;
          split ()
        | None -> ()
      in
      split ();
      if String.length !pending > max_line then begin
        send conn
          (Protocol.error_frame
             (proto_error "frame exceeds the 1 MiB line limit"));
        overlong := true
      end;
      if not !overlong then go ()
    | exception _ -> ()
  in
  (try go () with _ -> ());
  disconnect t conn

(* --- The accept loop --------------------------------------------------- *)

let install_signals t =
  (* The handler body runs at an allocation safepoint of whatever
     thread is interrupted: it must not take locks.  It flips an
     atomic the accept loop polls. *)
  let request _ = Atomic.set t.stop_req true in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request) with _ -> ());
  try Sys.set_signal Sys.sigint (Sys.Signal_handle request) with _ -> ()

let run t =
  (* A write to a freshly-dead client must surface as EPIPE, not kill
     the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  if t.cfg.sc_signals then install_signals t;
  (try Unix.unlink t.cfg.sc_socket with _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX t.cfg.sc_socket);
  Unix.listen listen_fd 64;
  let executor = Thread.create exec_loop t in
  let conn_threads = ref [] in
  let finished () = locked t (fun () -> t.exec_done) in
  while not (finished ()) do
    if Atomic.get t.stop_req then drain t;
    (match t.cfg.sc_idle_exit_s with
    | Some idle ->
      let quiet =
        locked t (fun () ->
            t.conns = [] && t.cold = [] && t.fast = []
            && now () -. t.last_activity > idle)
      in
      if quiet then drain t
    | None -> ());
    match Unix.select [ listen_fd ] [] [] 0.2 with
    | [ _ ], _, _ when not (finished ()) ->
      let fd, _ = Unix.accept listen_fd in
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0 with _ -> ());
      let conn = { cn_fd = fd; cn_mu = Mutex.create (); cn_alive = true } in
      locked t (fun () ->
          t.conns <- conn :: t.conns;
          t.last_activity <- now ());
      conn_threads := Thread.create (conn_loop t) conn :: !conn_threads
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Thread.join executor;
  (try Unix.close listen_fd with _ -> ());
  (try Unix.unlink t.cfg.sc_socket with _ -> ());
  (* Unblock the reader threads: shutting the sockets down makes their
     reads return 0/fail, and each thread runs its own disconnect. *)
  let conns = locked t (fun () -> t.conns) in
  List.iter
    (fun c -> try Unix.shutdown c.cn_fd Unix.SHUTDOWN_ALL with _ -> ())
    conns;
  List.iter (fun th -> try Thread.join th with _ -> ()) !conn_threads;
  Journal.close t.jrnl
