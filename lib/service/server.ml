(* The verification daemon: accept loop + per-connection reader threads
   + one executor thread, sharing a journal that doubles as the verdict
   memo and the crash-recovery ledger.

   Why a single executor: the Verify engine's defaults ([with_engine])
   are process-global, so two jobs running under different QoS budgets
   concurrently would race on them.  Jobs therefore run one at a time —
   each exploration still fans out over [sc_jobs] domains internally,
   which is where the parallelism that matters lives.  Everything else
   (socket reads, frame writes, status queries) is fully concurrent.

   Robustness invariants, in one place:
   - overload: cold submissions past [sc_queue_bound] get a structured
     shed frame; memo-known submissions are always accepted (serving a
     journaled verdict costs no exploration, so shedding it would be
     degradation for nothing);
   - disconnects: a job whose last waiter hangs up has its budget's
     cancel probe flipped; the exploration winds down cooperatively
     within one tick and the aborted verdict is never journaled;
   - crashes: the job ledger (synthetic "job/CASE" records in the same
     WAL) marks submissions at enqueue; a daemon restarted with
     [sc_resume] re-enqueues exactly the ledger's in-flight entries;
   - drain: SIGTERM (or a drain frame) stops intake, finishes the
     queue, flushes the journal and exits 0. *)

open Fcsl_core
open Fcsl_report

type config = {
  sc_socket : string;
  sc_journal_dir : string;
  sc_resume : bool;
  sc_fsync : Journal.fsync_policy option;
  sc_queue_bound : int;
  sc_jobs : int;
  sc_signals : bool;
  sc_idle_exit_s : float option;
  sc_job_delay_s : float;
  sc_overload_high : int;
  sc_overload_low : int;
  sc_rate : (float * int) option;
}

let config ?(resume = false) ?fsync ?(queue_bound = 16) ?(jobs = 1)
    ?(signals = true) ?idle_exit_s ?(job_delay_s = 0.) ?overload_high
    ?overload_low ?rate ~socket ~journal_dir () =
  (* Watermark defaults frame the queue bound: pressure is declared at
     3/4 of capacity and released at 1/4, so the overload state can't
     flap on a queue oscillating around one threshold. *)
  let high =
    match overload_high with
    | Some h -> max 1 h
    | None -> max 1 (queue_bound * 3 / 4)
  in
  let low =
    match overload_low with
    | Some l -> max 0 (min l (high - 1))
    | None -> min (high - 1) (queue_bound / 4)
  in
  {
    sc_socket = socket;
    sc_journal_dir = journal_dir;
    sc_resume = resume;
    sc_fsync = fsync;
    sc_queue_bound = queue_bound;
    sc_jobs = jobs;
    sc_signals = signals;
    sc_idle_exit_s = idle_exit_s;
    sc_job_delay_s = job_delay_s;
    sc_overload_high = high;
    sc_overload_low = low;
    sc_rate = rate;
  }

(* --- Connections ------------------------------------------------------- *)

type conn = {
  cn_fd : Unix.file_descr;
  cn_mu : Mutex.t;
  mutable cn_alive : bool;
  (* admission control: a per-connection token bucket (when the config
     arms one).  Refilled lazily at each submit under the server lock. *)
  mutable cn_tokens : float;
  mutable cn_refill_t : float;
}

(* Frame writes are mutexed per connection (the executor, the progress
   thread and the reader thread all answer on the same socket) and go
   through [Wire.write_line], which survives EINTR and partial writes
   — a slow or signal-interrupted socket must never tear a frame
   mid-line.  A hard write failure (dead peer, stalled past the bound)
   just marks the connection dead: the disconnect path owns the
   cleanup. *)
let send conn line =
  Mutex.lock conn.cn_mu;
  (try if conn.cn_alive then Wire.write_line conn.cn_fd line
   with _ -> conn.cn_alive <- false);
  Mutex.unlock conn.cn_mu

(* --- Jobs -------------------------------------------------------------- *)

type job = {
  jb_id : int;
  jb_case : string;
  jb_qos : Protocol.qos;  (* the tier the client asked for (digest key) *)
  jb_run_qos : Protocol.qos;
      (* the tier the job actually runs under: one rung below [jb_qos]
         when admission happened under overload.  A demoted verdict is
         marked [degraded] and never memoized as the full-tier answer. *)
  jb_digest : string;
  jb_cached : bool;  (* memo-known at submit: skips the cold queue *)
  jb_keep : bool;  (* resumed from the ledger: runs without waiters *)
  jb_cancel : bool Atomic.t;
  jb_ticks : int Atomic.t;
  mutable jb_state : [ `Queued | `Running | `Done | `Cancelled ];
  mutable jb_waiters : conn list;
}

type t = {
  cfg : config;
  mu : Mutex.t;
  cv : Condition.t;  (* wakes the executor: new work or drain *)
  jrnl : Journal.t;
  mutable cold : job list;  (* FIFO, bounded by sc_queue_bound *)
  mutable fast : job list;  (* memo-known FIFO, never shed *)
  live : (string, job) Hashtbl.t;  (* digest -> queued/running job *)
  mutable next_id : int;
  mutable draining : bool;
  mutable exec_done : bool;
  mutable conns : conn list;
  mutable last_activity : float;
  stop_req : bool Atomic.t;  (* set from the SIGTERM handler *)
  (* health gauges (all under [mu]) *)
  started : float;
  mutable overload : Protocol.overload_state;
  mutable shed_total : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
}

let ledger_spec case = "job/" ^ case

let is_ledger_spec s =
  String.length s > 4 && String.sub s 0 4 = "job/"

(* Shed decisions are journaled under their own spec namespace so
   [--resume] restores the overload accounting honestly: the record's
   states field carries the *cumulative* shed count, so recovering the
   maximum over surviving records rebuilds the counter even after
   compaction collapses duplicates. *)
let shed_spec case = "shed/" ^ case

let is_shed_spec s = String.length s > 5 && String.sub s 0 5 = "shed/"

let now () = Unix.gettimeofday ()

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* A ledger record for the job itself, riding the same WAL as the spec
   verdicts.  [tier] distinguishes a finished job ("service") from a
   cancelled one ("service-cancelled"): only the former is a memo hit
   for [Journal.verdict_of_digest], and neither resumes. *)
let ledger_done t job ~tier ~cancelled ~elapsed_s ~states =
  Journal.append t.jrnl
    (Journal.Spec_done
       {
         Journal.ri_spec = ledger_spec job.jb_case;
         ri_params = job.jb_digest;
         ri_tier = tier;
         ri_seed = None;
         ri_initial_states = 0;
         ri_outcomes = 0;
         ri_diverged = 0;
         ri_complete = not cancelled;
         ri_states = states;
         ri_failures = [];
         ri_worker_crashes = [];
         ri_budget =
           (if cancelled then
              Some
                {
                  Journal.bi_elapsed_s = elapsed_s;
                  bi_states = states;
                  bi_major_words = 0;
                  bi_tripped = Some (Budget.reason_name Budget.Cancelled);
                }
            else None);
       });
  Journal.flush t.jrnl

(* Is this digest already served by the journal?  Only a *finished*,
   full-tier job ledger record counts: a cancelled one must re-explore,
   and a demoted one ("service-degraded") answered under a lower budget
   than its digest promises — serving it as the memo would be a phantom
   full-tier verdict. *)
let memo_hit t digest =
  match Journal.verdict_of_digest t.jrnl ~digest with
  | Some ri -> ri.Journal.ri_tier = "service"
  | None -> false

(* --- Overload state machine -------------------------------------------- *)

(* Hysteresis on the cold-queue depth: pressure is declared at the high
   watermark and only released at the low one.  Called under [mu]
   whenever the cold queue changes length. *)
let update_overload t =
  let depth = List.length t.cold in
  match t.overload with
  | Protocol.Normal ->
    if depth >= t.cfg.sc_overload_high then t.overload <- Protocol.Overloaded
  | Protocol.Overloaded ->
    if depth <= t.cfg.sc_overload_low then t.overload <- Protocol.Normal

(* Answer a submission with a structured shed frame, count it, and
   journal the decision (group-committed — a flood must not turn every
   shed into an fsync).  Called under [mu]. *)
let shed_reply t ~case ~digest ~reason =
  t.shed_total <- t.shed_total + 1;
  Journal.append t.jrnl
    (Journal.Spec_done
       {
         Journal.ri_spec = shed_spec case;
         ri_params = digest;
         ri_tier = "service-shed";
         ri_seed = None;
         ri_initial_states = 0;
         ri_outcomes = 0;
         ri_diverged = 0;
         ri_complete = true;
         ri_states = t.shed_total;
         ri_failures = [];
         ri_worker_crashes = [];
         ri_budget = None;
       });
  Protocol.shed ~reason ~queue:(List.length t.cold)

(* Lazy token-bucket refill; [true] when the submission may pass.
   Called under [mu]. *)
let admit_rate t conn =
  match t.cfg.sc_rate with
  | None -> true
  | Some (rate, burst) ->
    let tnow = now () in
    conn.cn_tokens <-
      Float.min (float_of_int burst)
        (conn.cn_tokens +. ((tnow -. conn.cn_refill_t) *. rate));
    conn.cn_refill_t <- tnow;
    if conn.cn_tokens >= 1. then begin
      conn.cn_tokens <- conn.cn_tokens -. 1.;
      true
    end
    else false

(* --- Creation and resume ----------------------------------------------- *)

let mkjob t ~case ~qos ?(run_qos = None) ~cached ~keep () =
  let id = t.next_id in
  t.next_id <- id + 1;
  {
    jb_id = id;
    jb_case = case;
    jb_qos = qos;
    jb_run_qos = Option.value run_qos ~default:qos;
    jb_digest = Protocol.digest ~case ~qos;
    jb_cached = cached;
    jb_keep = keep;
    jb_cancel = Atomic.make false;
    jb_ticks = Atomic.make 0;
    jb_state = `Queued;
    jb_waiters = [];
  }

let create cfg =
  let jrnl =
    Journal.openj ?fsync:cfg.sc_fsync ~resume:cfg.sc_resume cfg.sc_journal_dir
  in
  let t =
    {
      cfg;
      mu = Mutex.create ();
      cv = Condition.create ();
      jrnl;
      cold = [];
      fast = [];
      live = Hashtbl.create 16;
      next_id = 1;
      draining = false;
      exec_done = false;
      conns = [];
      last_activity = now ();
      stop_req = Atomic.make false;
      started = now ();
      overload = Protocol.Normal;
      shed_total = 0;
      memo_hits = 0;
      memo_misses = 0;
    }
  in
  (* Crash recovery: the ledger's in-flight entries are jobs a previous
     daemon accepted but never finished (and never cancelled — a
     cancelled job writes its terminal record immediately).  Re-enqueue
     them as waiter-less keepers: their clients are gone, but the
     verdicts become durable for everyone who resubmits the digest.
     The shed ledger restores the cumulative shed counter the same
     way, so health accounting is honest across the restart. *)
  if cfg.sc_resume then begin
    let records, _torn = Journal.read cfg.sc_journal_dir in
    List.iter
      (function
        | Journal.Spec_done ri when is_shed_spec ri.Journal.ri_spec ->
          t.shed_total <- max t.shed_total ri.Journal.ri_states
        | _ -> ())
      records;
    let jobs = Journal.jobs_of_records records in
    List.iter
      (fun (j : Journal.job) ->
        if j.Journal.j_status = `In_flight && is_ledger_spec j.Journal.j_spec
        then
          match
            ( Protocol.case_of_digest j.Journal.j_params,
              Protocol.qos_of_digest j.Journal.j_params )
          with
          | Some case, Some qos when Registry.find case <> None ->
            let job = mkjob t ~case ~qos ~cached:false ~keep:true () in
            Hashtbl.replace t.live job.jb_digest job;
            t.cold <- t.cold @ [ job ]
          | _ -> ())
      jobs;
    (* the overload state is a function of the restored queue depth —
       recomputing it here is exactly the honest restoration: a daemon
       that died overloaded resumes overloaded *)
    if List.length t.cold >= t.cfg.sc_overload_high then
      t.overload <- Protocol.Overloaded
  end;
  t

let drain t =
  locked t (fun () ->
      if not t.draining then begin
        t.draining <- true;
        Condition.broadcast t.cv
      end)

let stop t = drain t

(* --- The executor ------------------------------------------------------ *)

let notify_waiters t job frame =
  let waiters = locked t (fun () -> job.jb_waiters) in
  List.iter (fun c -> send c frame) waiters

let run_job t job =
  (* The chaos/test hook: an artificial pre-exploration delay makes
     "kill the client mid-job" and "fill the queue" deterministic.  It
     polls the cancel flag so a dead client doesn't hold the executor
     for the full delay. *)
  let rec delay left =
    if left > 0. && not (Atomic.get job.jb_cancel) then begin
      let step = Float.min 0.02 left in
      Thread.delay step;
      delay (left -. step)
    end
  in
  delay t.cfg.sc_job_delay_s;
  let case =
    match Registry.find job.jb_case with
    | Some c -> c
    | None -> assert false (* submit rejects unknown cases *)
  in
  (* [jb_run_qos] — the admission-time tier, demoted under overload —
     not the digest tier the client asked for *)
  let lim =
    Protocol.qos_limits
      ~tick_hook:(fun () -> Atomic.incr job.jb_ticks)
      ~cancel:(fun () -> Atomic.get job.jb_cancel)
      job.jb_run_qos
  in
  (* Progress frames ride a side thread: the tick hook runs on worker
     domains inside the exploration and must stay allocation-trivial,
     so it only bumps an atomic that this thread samples. *)
  let progressing = Atomic.make true in
  let progress_thread =
    Thread.create
      (fun () ->
        let last = ref 0 in
        while Atomic.get progressing do
          Thread.delay 0.25;
          let n = Atomic.get job.jb_ticks in
          if n > !last && Atomic.get progressing then begin
            last := n;
            notify_waiters t job (Protocol.progress ~job:job.jb_id ~states:n)
          end
        done)
      ()
  in
  let started = now () in
  let units0 = Journal.completed_units t.jrnl in
  let outcome =
    try
      Ok
        (Verify.with_engine ~jobs:t.cfg.sc_jobs ~budget:lim
           ~journal:(Some t.jrnl) case.Registry.c_verify)
    with e -> Error (Crash.of_exn e)
  in
  Atomic.set progressing false;
  Thread.join progress_thread;
  let elapsed_s = now () -. started in
  let fresh_units = Journal.completed_units t.jrnl - units0 in
  let frame =
    match outcome with
    | Ok reports ->
      let cancelled = List.exists Verify.cancelled reports in
      let degraded = job.jb_run_qos <> job.jb_qos in
      (* fresh_units = 0 <=> every spec verdict replayed from the
         journal: the memo proof the tests and CI assert on.  A demoted
         job's ledger tier is "service-degraded": real evidence for the
         waiters it answers, but never a memo hit for its full-tier
         digest — that would be a phantom verdict. *)
      if cancelled then
        ledger_done t job ~tier:"service-cancelled" ~cancelled:true ~elapsed_s
          ~states:(Atomic.get job.jb_ticks)
      else
        ledger_done t job
          ~tier:(if degraded then "service-degraded" else "service")
          ~cancelled:false ~elapsed_s
          ~states:(Atomic.get job.jb_ticks);
      Protocol.verdict ~job:job.jb_id ~case:job.jb_case ~digest:job.jb_digest
        ~memo:(fresh_units = 0) ~fresh_units ~cancelled ~degraded ~reports ()
    | Error crash ->
      (* An exception escaping the engine is an internal error; the
         ledger keeps the job out of the resume set (re-running a
         crasher in a loop would be a restart storm), and the client
         gets the structured crash. *)
      ledger_done t job ~tier:"service-error" ~cancelled:true ~elapsed_s
        ~states:(Atomic.get job.jb_ticks);
      Protocol.error_frame ~job:job.jb_id crash
  in
  (* Mark the job done, unmap it and snapshot the waiters in ONE
     critical section before broadcasting the verdict: a submit racing
     this completion must either attach before the snapshot (and so
     receive the frame below) or find the job gone and take the memo
     path.  Flipping the state after the broadcast leaves a window
     where a freshly-attached waiter is acked but never answered. *)
  let waiters =
    locked t (fun () ->
        job.jb_state <- `Done;
        (* Only unmap the digest if it still maps to this job: a
           cancelled-then-resubmitted digest already points at its
           successor. *)
        (match Hashtbl.find_opt t.live job.jb_digest with
        | Some j when j == job -> Hashtbl.remove t.live job.jb_digest
        | _ -> ());
        t.last_activity <- now ();
        job.jb_waiters)
  in
  List.iter (fun c -> send c frame) waiters

let exec_loop t =
  let rec next () =
    Mutex.lock t.mu;
    let rec wait () =
      if t.fast = [] && t.cold = [] then
        if t.draining then None
        else begin
          Condition.wait t.cv t.mu;
          wait ()
        end
      else
        match t.fast with
        | j :: rest ->
          t.fast <- rest;
          Some j
        | [] -> (
          match t.cold with
          | j :: rest ->
            t.cold <- rest;
            update_overload t;
            Some j
          | [] -> None)
    in
    let picked = wait () in
    (match picked with
    | Some j when j.jb_state = `Queued -> j.jb_state <- `Running
    | _ -> ());
    Mutex.unlock t.mu;
    match picked with
    | None -> ()
    | Some j ->
      if j.jb_state = `Running then run_job t j;
      next ()
  in
  next ();
  locked t (fun () -> t.exec_done <- true)

(* --- Request handling -------------------------------------------------- *)

let proto_error msg = Crash.make Crash.Protocol_error msg

let submit t conn ~case ~qos =
  let reply =
    locked t (fun () ->
        t.last_activity <- now ();
        let digest = Protocol.digest ~case ~qos in
        if t.draining then shed_reply t ~case ~digest ~reason:"draining"
        else if Registry.find case = None then
          Protocol.error_frame (proto_error (Printf.sprintf "unknown case %S" case))
        else begin
          let attachable =
            match Hashtbl.find_opt t.live digest with
            | Some j
              when j.jb_state <> `Done
                   && j.jb_state <> `Cancelled
                   && not (Atomic.get j.jb_cancel) ->
              Some j
            | _ -> None
          in
          match attachable with
          | Some j ->
            (* In-flight dedup: N clients asking for one digest share
               one exploration and all get the same verdict frame. *)
            j.jb_waiters <- conn :: j.jb_waiters;
            Protocol.ack ~job:j.jb_id ~digest ~position:0 ~cached:j.jb_cached
          | None ->
            let cached = memo_hit t digest in
            update_overload t;
            if cached then begin
              (* the memo fast lane is never shed and never demoted:
                 serving a journaled verdict costs no exploration *)
              t.memo_hits <- t.memo_hits + 1;
              let job = mkjob t ~case ~qos ~cached:true ~keep:false () in
              job.jb_waiters <- [ conn ];
              Hashtbl.replace t.live digest job;
              t.fast <- t.fast @ [ job ];
              Condition.broadcast t.cv;
              Protocol.ack ~job:job.jb_id ~digest
                ~position:(List.length t.fast) ~cached:true
            end
            else if not (admit_rate t conn) then
              (* per-client token bucket: one flooding client is
                 answered with structured sheds before it can saturate
                 the queue everyone shares.  Only fresh work spends
                 tokens — attaching and memo hits cost no exploration,
                 so the memo fast lane is never rate-shed either *)
              shed_reply t ~case ~digest ~reason:"rate-limited"
            else if
              t.overload = Protocol.Overloaded && qos = Protocol.Bronze
            then
              (* graceful degradation, cheapest traffic first: under
                 pressure bronze is shed outright (it has no lower tier
                 to demote to) while gold/silver stay admitted below *)
              shed_reply t ~case ~digest ~reason:"overload"
            else if List.length t.cold >= t.cfg.sc_queue_bound then
              shed_reply t ~case ~digest ~reason:"queue-full"
            else begin
              let run_qos =
                if t.overload = Protocol.Overloaded then
                  Some (Protocol.qos_demote qos)
                else None
              in
              t.memo_misses <- t.memo_misses + 1;
              let job = mkjob t ~case ~qos ~run_qos ~cached:false ~keep:false () in
              job.jb_waiters <- [ conn ];
              Hashtbl.replace t.live digest job;
              (* The ledger entry makes the accepted job durable
                 before any exploration starts: a daemon killed right
                 here resumes it. *)
              Journal.append t.jrnl
                (Journal.Spec_begin { spec = ledger_spec case; params = digest });
              Journal.flush t.jrnl;
              t.cold <- t.cold @ [ job ];
              update_overload t;
              Condition.broadcast t.cv;
              Protocol.ack ~job:job.jb_id ~digest
                ~position:(List.length t.cold) ~cached:false
            end
        end)
  in
  send conn reply

(* The live health gauges, computed under [mu].  Shared by the health
   frame, the ready frame and the status endpoint's extra fields. *)
let health_snapshot t =
  locked t (fun () ->
      let inflight =
        Hashtbl.fold
          (fun _ j n -> if j.jb_state = `Running then n + 1 else n)
          t.live 0
      in
      let served = t.memo_hits + t.memo_misses in
      ( Protocol.health_fields ~uptime_s:(now () -. t.started)
          ~queue_depth:(List.length t.cold) ~inflight
          ?memo_hit_rate:
            (if served = 0 then None
             else Some (float_of_int t.memo_hits /. float_of_int served))
          ~journal_lag_bytes:(Journal.pending_bytes t.jrnl)
          ?journal_fault:(Journal.io_failure t.jrnl)
          ~shed_total:t.shed_total ~overload_state:t.overload (),
        t.draining,
        t.overload ))

let status_frame t =
  (* Flush so [Journal.read] (which scans the files, not the handle's
     index) sees everything appended so far, then render through the
     same code path as [fcsl jobs status --json]. *)
  Journal.flush t.jrnl;
  let records, _ = Journal.read t.cfg.sc_journal_dir in
  let jobs = Journal.jobs_of_records records in
  let health, draining, _ = health_snapshot t in
  let extra =
    locked t (fun () ->
        [
          ("type", Json.Str "status");
          ("queue", Json.Int (List.length t.cold));
          ("fast", Json.Int (List.length t.fast));
          ("draining", Json.Bool draining);
        ]
        @ health)
  in
  Protocol.jobs_to_json ~extra jobs

let health_frame t =
  let fields, _, _ = health_snapshot t in
  Json.to_string (Json.Obj (("type", Json.Str "health") :: fields))

let ready_frame t =
  let _, draining, overload = health_snapshot t in
  Protocol.ready ~ready:(not draining) ~draining ~overload_state:overload

let withdraw_conn_from t conn job =
  job.jb_waiters <- List.filter (fun c -> c != conn) job.jb_waiters;
  if job.jb_waiters = [] && not job.jb_keep then begin
    match job.jb_state with
    | `Queued ->
      (* Never started: drop it from the queue and write the terminal
         ledger record now, so a restart doesn't resurrect a job
         nobody wants. *)
      job.jb_state <- `Cancelled;
      t.cold <- List.filter (fun j -> j != job) t.cold;
      t.fast <- List.filter (fun j -> j != job) t.fast;
      update_overload t;
      (match Hashtbl.find_opt t.live job.jb_digest with
      | Some j when j == job -> Hashtbl.remove t.live job.jb_digest
      | _ -> ());
      if not job.jb_cached then
        ledger_done t job ~tier:"service-cancelled" ~cancelled:true
          ~elapsed_s:0. ~states:0
    | `Running ->
      (* The budget's cancel probe trips within one tick; the verdict
         is reported cancelled and never journaled. *)
      Atomic.set job.jb_cancel true
    | `Done | `Cancelled -> ()
  end

let cancel t conn ~id =
  locked t (fun () ->
      let found = ref false in
      Hashtbl.iter
        (fun _ job ->
          if job.jb_id = id then begin
            found := true;
            withdraw_conn_from t conn job
          end)
        t.live;
      if !found then
        Json.to_string
          (Json.Obj [ ("type", Json.Str "cancelled"); ("job", Json.Int id) ])
      else Protocol.error_frame (proto_error (Printf.sprintf "unknown job %d" id)))

let disconnect t conn =
  locked t (fun () ->
      conn.cn_alive <- false;
      t.conns <- List.filter (fun c -> c != conn) t.conns;
      Hashtbl.iter (fun _ job -> withdraw_conn_from t conn job) t.live;
      t.last_activity <- now ());
  try Unix.close conn.cn_fd with _ -> ()

let handle_line t conn line =
  match Protocol.parse_request line with
  | Error crash -> send conn (Protocol.error_frame crash)
  | Ok Protocol.Ping -> send conn Protocol.pong
  | Ok Protocol.Status -> send conn (status_frame t)
  | Ok Protocol.Health -> send conn (health_frame t)
  | Ok Protocol.Ready -> send conn (ready_frame t)
  | Ok Protocol.Drain ->
    drain t;
    send conn Protocol.drained
  | Ok (Protocol.Cancel id) -> send conn (cancel t conn ~id)
  | Ok (Protocol.Submit { case; qos }) -> submit t conn ~case ~qos

(* A line cap keeps one hostile client from ballooning the daemon's
   memory: past it the frame is answered with a protocol error and the
   connection is dropped. *)
let max_line = 1 lsl 20

let conn_loop t conn =
  let chunk = Bytes.create 4096 in
  let pending = ref "" in
  let overlong = ref false in
  let rec go () =
    match Unix.read conn.cn_fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      pending := !pending ^ Bytes.sub_string chunk 0 n;
      let rec split () =
        match String.index_opt !pending '\n' with
        | Some i ->
          let line = String.sub !pending 0 i in
          pending := String.sub !pending (i + 1) (String.length !pending - i - 1);
          if String.trim line <> "" then handle_line t conn line;
          split ()
        | None -> ()
      in
      split ();
      if String.length !pending > max_line then begin
        send conn
          (Protocol.error_frame
             (proto_error "frame exceeds the 1 MiB line limit"));
        overlong := true
      end;
      if not !overlong then go ()
    | exception _ -> ()
  in
  (try go () with _ -> ());
  disconnect t conn

(* --- The accept loop --------------------------------------------------- *)

let install_signals t =
  (* The handler body runs at an allocation safepoint of whatever
     thread is interrupted: it must not take locks.  It flips an
     atomic the accept loop polls. *)
  let request _ = Atomic.set t.stop_req true in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request) with _ -> ());
  try Sys.set_signal Sys.sigint (Sys.Signal_handle request) with _ -> ()

let run t =
  (* A write to a freshly-dead client must surface as EPIPE, not kill
     the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  if t.cfg.sc_signals then install_signals t;
  (try Unix.unlink t.cfg.sc_socket with _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX t.cfg.sc_socket);
  Unix.listen listen_fd 64;
  let executor = Thread.create exec_loop t in
  let conn_threads = ref [] in
  let finished () = locked t (fun () -> t.exec_done) in
  while not (finished ()) do
    if Atomic.get t.stop_req then drain t;
    (match t.cfg.sc_idle_exit_s with
    | Some idle ->
      let quiet =
        locked t (fun () ->
            t.conns = [] && t.cold = [] && t.fast = []
            && now () -. t.last_activity > idle)
      in
      if quiet then drain t
    | None -> ());
    match Unix.select [ listen_fd ] [] [] 0.2 with
    | [ _ ], _, _ when not (finished ()) ->
      let fd, _ = Unix.accept listen_fd in
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0 with _ -> ());
      let conn =
        {
          cn_fd = fd;
          cn_mu = Mutex.create ();
          cn_alive = true;
          cn_tokens =
            (match t.cfg.sc_rate with
            | Some (_, burst) -> float_of_int burst
            | None -> 0.);
          cn_refill_t = now ();
        }
      in
      locked t (fun () ->
          t.conns <- conn :: t.conns;
          t.last_activity <- now ());
      conn_threads := Thread.create (conn_loop t) conn :: !conn_threads
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Thread.join executor;
  (try Unix.close listen_fd with _ -> ());
  (try Unix.unlink t.cfg.sc_socket with _ -> ());
  (* Unblock the reader threads: shutting the sockets down makes their
     reads return 0/fail, and each thread runs its own disconnect. *)
  let conns = locked t (fun () -> t.conns) in
  List.iter
    (fun c -> try Unix.shutdown c.cn_fd Unix.SHUTDOWN_ALL with _ -> ())
    conns;
  List.iter (fun th -> try Thread.join th with _ -> ()) !conn_threads;
  Journal.close t.jrnl
