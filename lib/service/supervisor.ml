(* The watchdog parent behind [fcsl serve --supervise]: spawn the
   daemon as a child process, wait on it, and classify every way it can
   die.  A clean exit (the daemon drained) ends supervision with the
   child's code; everything else — a crash, a kill -9, the OOM killer —
   is a failure the supervisor answers by restarting the child with
   resume semantics, under a jittered exponential-backoff restart
   budget.  Too many failures inside the sliding window and it gives up
   with a stable exit code, so an outer orchestrator can tell "the
   daemon is crash-looping" from "the daemon drained".

   The supervisor itself holds no daemon state: everything a restart
   needs is in the journal, which is exactly the crash-safety story the
   daemon already tells ([--resume] re-enqueues the in-flight ledger).
   Supervision just automates the restart. *)

open Fcsl_core

(* 0..3 are the verdict codes ([Verify.exit_ok] .. [exit_internal]);
   4 is "the supervisor gave up": the restart budget was exhausted. *)
let exit_gave_up = 4

type config = {
  sv_restart_limit : int;
  sv_window_s : float;
  sv_backoff_base_s : float;
  sv_backoff_seed : int;
  sv_pidfile : string option;
  sv_log : string -> unit;
}

let config ?(restart_limit = 5) ?(window_s = 60.) ?(backoff_base_s = 0.25)
    ?(backoff_seed = 0) ?pidfile ?(log = ignore) () =
  {
    sv_restart_limit = max 1 restart_limit;
    sv_window_s = window_s;
    sv_backoff_base_s = backoff_base_s;
    sv_backoff_seed = backoff_seed;
    sv_pidfile = pidfile;
    sv_log = log;
  }

let write_pidfile cfg pid =
  match cfg.sv_pidfile with
  | None -> ()
  | Some path -> (
    try
      let oc = open_out path in
      Printf.fprintf oc "%d\n" pid;
      close_out oc
    with Sys_error _ -> ())

let show_status = function
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

(* [spawn ~restart] starts one daemon child and returns its pid;
   [restart] is false only for the first child (later children must run
   with resume semantics — their predecessor died with work possibly in
   flight).  The caller owns the fork, so this module never forks under
   a process that already spawned domains. *)
let run cfg ~(spawn : restart:bool -> int) : int =
  (* forward a terminate request to the current child so it drains;
     the supervisor then sees a clean exit and follows it down *)
  let child = ref None in
  let forward signal =
    match !child with
    | Some pid -> ( try Unix.kill pid signal with Unix.Unix_error _ -> ())
    | None -> ()
  in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> forward Sys.sigterm))
   with Sys_error _ | Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> forward Sys.sigterm))
   with Sys_error _ | Invalid_argument _ -> ());
  let rec loop ~restart ~failures =
    let pid = spawn ~restart in
    child := Some pid;
    write_pidfile cfg pid;
    cfg.sv_log
      (Printf.sprintf "supervisor: child %d %s" pid
         (if restart then "restarted (resume)" else "started"));
    let rec wait () =
      match Unix.waitpid [] pid with
      | _, status -> status
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    in
    let status = wait () in
    child := None;
    match status with
    | Unix.WEXITED 0 ->
      cfg.sv_log "supervisor: child drained cleanly";
      0
    | status ->
      let tnow = Unix.gettimeofday () in
      let failures =
        tnow
        :: List.filter (fun f -> tnow -. f <= cfg.sv_window_s) failures
      in
      if List.length failures >= cfg.sv_restart_limit then begin
        cfg.sv_log
          (Printf.sprintf
             "supervisor: child %s; %d failures within %.0fs — giving up"
             (show_status status) (List.length failures) cfg.sv_window_s);
        exit_gave_up
      end
      else begin
        (* jittered exponential backoff in the number of failures still
           inside the window (the engine's one backoff schedule; [k] is
           2-based, so the first restart waits ~base seconds).  A child
           that stayed up past the window ages its predecessors'
           failures out and restarts fast again. *)
        let delay =
          Pool.backoff_delay ~seed:cfg.sv_backoff_seed
            ~base:cfg.sv_backoff_base_s 0
            (List.length failures + 1)
        in
        cfg.sv_log
          (Printf.sprintf "supervisor: child %s; restarting in %.2fs"
             (show_status status) delay);
        Unix.sleepf delay;
        loop ~restart:true ~failures
      end
  in
  loop ~restart:false ~failures:[]
