(* The client side of the service protocol: a blocking line-framed
   connection used by [fcsl submit], the service tests, the bench
   harness and the chaos modes.  One request at a time per connection —
   the submit path reads frames until its terminal verdict (or shed, or
   error), invoking a callback on progress frames in between. *)

open Fcsl_core

type conn = {
  fd : Unix.file_descr;
  mutable pending : string;
  mutable closed : bool;
}

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd; pending = ""; closed = false }

let close c =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with _ -> ()
  end

(* Abrupt teardown without the polite shutdown: the chaos harness's
   "killed client" — from the server's side indistinguishable from a
   SIGKILLed process holding the other end. *)
let abandon = close

(* Request writes ride [Wire.write_line]: EINTR and partial writes are
   retried until the whole line is out — a signal landing mid-submit
   must not tear the frame and desynchronize the stream. *)
let send c (req : Protocol.request) =
  Wire.write_line c.fd (Json.to_string (Protocol.request_to_json req))

let send_raw c line = Wire.write_line c.fd line

let read_frame ?(timeout_s = 60.) c : (Json.t, string) result =
  let chunk = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec next () =
    match String.index_opt c.pending '\n' with
    | Some i ->
      let line = String.sub c.pending 0 i in
      c.pending <-
        String.sub c.pending (i + 1) (String.length c.pending - i - 1);
      if String.trim line = "" then next ()
      else (
        match Json.parse line with
        | Ok v -> Ok v
        | Error e -> Error ("unparseable frame from server: " ^ e))
    | None ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then Error "timeout waiting for a frame"
      else (
        match Unix.select [ c.fd ] [] [] (Float.min left 1.0) with
        | [], _, _ -> next ()
        | _ -> (
          match Unix.read c.fd chunk 0 (Bytes.length chunk) with
          | 0 -> Error "server closed the connection"
          | n ->
            c.pending <- c.pending ^ Bytes.sub_string chunk 0 n;
            next ()
          | exception e -> Error (Printexc.to_string e)))
  in
  next ()

let frame_type v = Option.bind (Json.member "type" v) Json.to_str

let ping ?(timeout_s = 5.) c =
  match send c Protocol.Ping with
  | () -> (
    match read_frame ~timeout_s c with
    | Ok v -> frame_type v = Some "pong"
    | Error _ -> false)
  | exception _ -> false

type verdict = {
  v_job : int;
  v_case : string;
  v_status : int;
  v_memo : bool;
  v_fresh_units : int;
  v_cancelled : bool;
  v_frame : Json.t;  (* the whole verdict frame, for JSON output *)
}

type submit_error =
  | Shed of string  (* the structured overload answer, with its reason *)
  | Server_error of Crash.t  (* an error frame (protocol or internal) *)
  | Transport of string  (* timeouts, closed sockets, unparseable data *)

let pp_submit_error ppf = function
  | Shed reason -> Fmt.pf ppf "shed by the server: %s" reason
  | Server_error c -> Fmt.pf ppf "server error: %a" Crash.pp c
  | Transport msg -> Fmt.pf ppf "transport failure: %s" msg

let crash_of_frame v =
  match Json.member "crash" v with
  | Some crash -> (
    match Crash.of_json (Json.to_string crash) with
    | Ok c -> c
    | Error e ->
      Crash.make Crash.Protocol_error ("undecodable error frame: " ^ e))
  | None -> Crash.make Crash.Protocol_error "error frame without a crash"

(* Submit one case and block until its terminal frame.  The ack carries
   the job id; progress/verdict frames for *that id* are consumed (a
   frame for another id would mean protocol confusion and is a
   transport error).  [on_progress] sees the states counter. *)
let submit ?(qos = Protocol.Gold) ?(timeout_s = 600.) ?on_progress c ~case :
    (verdict, submit_error) result =
  match send c (Protocol.Submit { case; qos }) with
  | exception e -> Error (Transport (Printexc.to_string e))
  | () -> (
    let deadline = Unix.gettimeofday () +. timeout_s in
    let left () = Float.max 0.1 (deadline -. Unix.gettimeofday ()) in
    let int_field k v = Option.bind (Json.member k v) Json.to_int in
    let bool_field k v =
      Option.value (Option.bind (Json.member k v) Json.to_bool) ~default:false
    in
    let rec await job =
      match read_frame ~timeout_s:(left ()) c with
      | Error e -> Error (Transport e)
      | Ok v -> (
        match frame_type v with
        | Some "shed" ->
          Error
            (Shed
               (Option.value
                  (Option.bind (Json.member "reason" v) Json.to_str)
                  ~default:"unknown"))
        | Some "error" -> Error (Server_error (crash_of_frame v))
        | Some "ack" -> (
          match int_field "job" v with
          | Some id -> await (Some id)
          | None -> Error (Transport "ack frame without a job id"))
        | Some "progress" ->
          (match (on_progress, int_field "states" v) with
          | Some f, Some n -> f n
          | _ -> ());
          await job
        | Some "verdict" -> (
          match (job, int_field "job" v) with
          | Some expect, Some got when expect <> got ->
            Error (Transport "verdict for a different job id")
          | _ -> (
            match
              ( int_field "job" v,
                Option.bind (Json.member "case" v) Json.to_str,
                int_field "status" v )
            with
            | Some v_job, Some v_case, Some v_status ->
              Ok
                {
                  v_job;
                  v_case;
                  v_status;
                  v_memo = bool_field "memo" v;
                  v_fresh_units =
                    Option.value (int_field "fresh_units" v) ~default:0;
                  v_cancelled = bool_field "cancelled" v;
                  v_frame = v;
                }
            | _ -> Error (Transport "verdict frame missing fields")))
        | Some "draining" | Some "pong" | Some "status" | Some "cancelled" ->
          (* responses to other ops are impossible mid-submit on a
             well-behaved connection, but skipping them is harmless *)
          await job
        | _ -> Error (Transport "unrecognized frame type"))
    in
    await None)

let health ?(timeout_s = 10.) c : (Json.t, submit_error) result =
  match send c Protocol.Health with
  | exception e -> Error (Transport (Printexc.to_string e))
  | () -> (
    match read_frame ~timeout_s c with
    | Error e -> Error (Transport e)
    | Ok v -> (
      match frame_type v with
      | Some "health" -> Ok v
      | Some "error" -> Error (Server_error (crash_of_frame v))
      | _ -> Error (Transport "expected a health frame")))

let ready ?(timeout_s = 10.) c : (bool, submit_error) result =
  match send c Protocol.Ready with
  | exception e -> Error (Transport (Printexc.to_string e))
  | () -> (
    match read_frame ~timeout_s c with
    | Error e -> Error (Transport e)
    | Ok v -> (
      match frame_type v with
      | Some "ready" ->
        Ok
          (Option.value
             (Option.bind (Json.member "ready" v) Json.to_bool)
             ~default:false)
      | Some "error" -> Error (Server_error (crash_of_frame v))
      | _ -> Error (Transport "expected a ready frame")))

let status ?(timeout_s = 10.) c : (Json.t, submit_error) result =
  match send c Protocol.Status with
  | exception e -> Error (Transport (Printexc.to_string e))
  | () -> (
    match read_frame ~timeout_s c with
    | Error e -> Error (Transport e)
    | Ok v -> (
      match frame_type v with
      | Some "status" -> Ok v
      | Some "error" -> Error (Server_error (crash_of_frame v))
      | _ -> Error (Transport "expected a status frame")))

let drain ?(timeout_s = 10.) c : (unit, submit_error) result =
  match send c Protocol.Drain with
  | exception e -> Error (Transport (Printexc.to_string e))
  | () -> (
    match read_frame ~timeout_s c with
    | Error e -> Error (Transport e)
    | Ok v -> (
      match frame_type v with
      | Some "draining" -> Ok ()
      | _ -> Error (Transport "expected a draining frame")))

(* --- The retrying client ----------------------------------------------- *)

type retry_verdict = {
  rv_verdict : verdict;
  rv_attempts : int;  (* 1 = the first attempt succeeded *)
  rv_backoff_s : float;  (* total seconds slept between attempts *)
}

(* Resubmission is idempotent by construction: the submission is keyed
   on its params digest (case + QoS), so a retry that lands after the
   first attempt already completed server-side is answered from the
   journal memo — observable as [v_memo = true] on the returned
   verdict.  Each attempt opens a fresh connection (the old one is
   exactly what we no longer trust); Transport failures and sheds
   retry under jittered exponential backoff ([Pool.backoff_delay], the
   engine's one backoff schedule), structured server errors are
   deterministic and fail fast.  Two deadlines bound the loop: each
   attempt gets at most [attempt_timeout_s], the whole affair at most
   [retry_budget_s]. *)
let submit_retry ?(qos = Protocol.Gold) ?(retries = 3) ?(retry_budget_s = 60.)
    ?(attempt_timeout_s = 600.) ?(backoff_base_s = 0.05) ?(backoff_seed = 0)
    ?on_progress ~socket ~case () : (retry_verdict, submit_error) result =
  let deadline = Unix.gettimeofday () +. retry_budget_s in
  let attempt () =
    match connect ~socket with
    | exception e -> Error (Transport (Printexc.to_string e))
    | c ->
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          let timeout_s =
            Float.min attempt_timeout_s
              (Float.max 0.1 (deadline -. Unix.gettimeofday ()))
          in
          submit ~qos ~timeout_s ?on_progress c ~case)
  in
  let rec go k slept =
    match attempt () with
    | Ok v -> Ok { rv_verdict = v; rv_attempts = k; rv_backoff_s = slept }
    | Error (Server_error _ as e) -> Error e
    | Error ((Shed _ | Transport _) as e) ->
      if k > retries then Error e
      else
        let d = Pool.backoff_delay ~seed:backoff_seed ~base:backoff_base_s 0 (k + 1) in
        if Unix.gettimeofday () +. d >= deadline then Error e
        else begin
          Unix.sleepf d;
          go (k + 1) (slept +. d)
        end
  in
  go 1 0.

(* Poll until the daemon answers a ping — the "wait for the socket to
   exist" helper every embedder needs. *)
let wait_ready ?(timeout_s = 10.) ~socket () =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if Unix.gettimeofday () > deadline then false
    else
      match connect ~socket with
      | c ->
        let ok = ping c in
        close c;
        if ok then true
        else begin
          Thread.delay 0.05;
          go ()
        end
      | exception _ ->
        Thread.delay 0.05;
        go ()
  in
  go ()
