(* The wire protocol of the verification service: newline-delimited
   JSON frames over a Unix-domain socket.  One request frame per line
   from the client; the server answers with one or more response frames
   (progress streams, then exactly one terminal frame per request).

   Malformed frames are data, not exceptions: they parse to a
   [Crash.Protocol_error] that the server echoes back in a structured
   error frame, so a fuzzing client (or the torn-frames chaos mode)
   can never crash the daemon or silently lose a diagnosis. *)

open Fcsl_core

(* --- QoS tiers --------------------------------------------------------- *)

type qos = Gold | Silver | Bronze

let qos_name = function
  | Gold -> "gold"
  | Silver -> "silver"
  | Bronze -> "bronze"

let qos_of_name = function
  | "gold" -> Some Gold
  | "silver" -> Some Silver
  | "bronze" -> Some Bronze
  | _ -> None

(* One rung down the ladder: what an overloaded server demotes a
   bounded-or-unbounded submission to.  Bronze has nowhere lower to go
   — under pressure it is shed, not demoted. *)
let qos_demote = function Gold -> Silver | Silver -> Bronze | Bronze -> Bronze

(* The ladder mapping: gold runs unbounded (conclusive or bust), silver
   gets a generous wall clock, bronze a tight one plus a state ceiling —
   each degrades through Verify's ladder instead of hanging.  [cancel]
   is the client-disconnect probe threaded into every tier. *)
let qos_limits ?tick_hook ?cancel = function
  | Gold -> Budget.limits ?tick_hook ?cancel ()
  | Silver -> Budget.limits ?tick_hook ?cancel ~deadline_s:20. ()
  | Bronze ->
    Budget.limits ?tick_hook ?cancel ~deadline_s:5. ~max_states:20_000 ()

(* The service-level cache key: which case under which QoS tier.  The
   engine-level params digest (Verify.params_digest) already keys the
   per-spec verdicts inside the journal; this coarser digest keys whole
   jobs, and embeds the case name so digests never collide across
   cases. *)
let digest ~case ~qos = Printf.sprintf "case=%s;qos=%s" case (qos_name qos)

let case_of_digest d =
  match String.index_opt d ';' with
  | Some i when String.length d > 5 && String.sub d 0 5 = "case=" ->
    Some (String.sub d 5 (i - 5))
  | _ -> None

let qos_of_digest d =
  match String.index_opt d ';' with
  | Some i ->
    let rest = String.sub d (i + 1) (String.length d - i - 1) in
    if String.length rest > 4 && String.sub rest 0 4 = "qos=" then
      qos_of_name (String.sub rest 4 (String.length rest - 4))
    else None
  | None -> None

(* --- Requests ---------------------------------------------------------- *)

type request =
  | Ping
  | Submit of { case : string; qos : qos }
  | Status
  | Health
  | Ready
  | Cancel of int
  | Drain

let proto_error msg = Crash.make Crash.Protocol_error msg

let request_of_json (v : Json.t) : (request, Crash.t) result =
  match v with
  | Json.Obj _ -> (
    match Option.bind (Json.member "op" v) Json.to_str with
    | None -> Error (proto_error "frame has no string \"op\" field")
    | Some "ping" -> Ok Ping
    | Some "status" -> Ok Status
    | Some "health" -> Ok Health
    | Some "ready" -> Ok Ready
    | Some "drain" -> Ok Drain
    | Some "cancel" -> (
      match Option.bind (Json.member "job" v) Json.to_int with
      | Some id -> Ok (Cancel id)
      | None -> Error (proto_error "cancel needs an integer \"job\" field"))
    | Some "submit" -> (
      match Option.bind (Json.member "case" v) Json.to_str with
      | None -> Error (proto_error "submit needs a string \"case\" field")
      | Some case -> (
        match Json.member "qos" v with
        | None -> Ok (Submit { case; qos = Gold })
        | Some q -> (
          match Option.bind (Json.to_str q) qos_of_name with
          | Some qos -> Ok (Submit { case; qos })
          | None ->
            Error
              (proto_error
                 "submit \"qos\" must be \"gold\", \"silver\" or \"bronze\""))))
    | Some op -> Error (proto_error (Printf.sprintf "unknown op %S" op)))
  | _ -> Error (proto_error "frame is not a JSON object")

let parse_request line =
  match Json.parse line with
  | Error e -> Error (proto_error ("bad JSON frame: " ^ e))
  | Ok v -> request_of_json v

let request_to_json = function
  | Ping -> Json.Obj [ ("op", Json.Str "ping") ]
  | Status -> Json.Obj [ ("op", Json.Str "status") ]
  | Health -> Json.Obj [ ("op", Json.Str "health") ]
  | Ready -> Json.Obj [ ("op", Json.Str "ready") ]
  | Drain -> Json.Obj [ ("op", Json.Str "drain") ]
  | Cancel id -> Json.Obj [ ("op", Json.Str "cancel"); ("job", Json.Int id) ]
  | Submit { case; qos } ->
    Json.Obj
      [
        ("op", Json.Str "submit");
        ("case", Json.Str case);
        ("qos", Json.Str (qos_name qos));
      ]

(* --- Response frames --------------------------------------------------- *)

(* Every response is a one-line JSON object with a "type" tag.  Frame
   builders return the rendered line (no trailing newline). *)

let frame fields = Json.to_string (Json.Obj fields)
let pong = frame [ ("type", Json.Str "pong") ]

let ack ~job ~digest:d ~position ~cached =
  frame
    [
      ("type", Json.Str "ack");
      ("job", Json.Int job);
      ("digest", Json.Str d);
      ("position", Json.Int position);
      ("cached", Json.Bool cached);
    ]

let shed ~reason ~queue =
  frame
    [
      ("type", Json.Str "shed");
      ("reason", Json.Str reason);
      ("queue", Json.Int queue);
    ]

let progress ~job ~states =
  frame
    [
      ("type", Json.Str "progress");
      ("job", Json.Int job);
      ("states", Json.Int states);
    ]

let drained = frame [ ("type", Json.Str "draining") ]

(* --- Health and readiness ---------------------------------------------- *)

type overload_state = Normal | Overloaded

let overload_state_name = function
  | Normal -> "normal"
  | Overloaded -> "overloaded"

(* The one health rendering shared by the live `health` frame, the
   live `status` frame's extra fields, and the offline
   [fcsl jobs status --json] (which knows only the journal-derived
   subset and passes [None] for the live-only gauges). *)
let health_fields ?uptime_s ?queue_depth ?inflight ?memo_hit_rate
    ?journal_lag_bytes ?journal_fault ~shed_total ~overload_state () =
  let opt_f = function Some f -> Json.Float f | None -> Json.Null in
  let opt_i = function Some i -> Json.Int i | None -> Json.Null in
  [
    ("uptime_s", opt_f uptime_s);
    ("queue_depth", opt_i queue_depth);
    ("inflight", opt_i inflight);
    ("shed_total", Json.Int shed_total);
    ("memo_hit_rate", opt_f memo_hit_rate);
    ("overload_state", Json.Str (overload_state_name overload_state));
    ("journal_lag_bytes", opt_i journal_lag_bytes);
    ( "journal_fault",
      match journal_fault with
      | Some c -> Json.Str (Crash.message c)
      | None -> Json.Null );
  ]

(* Liveness vs readiness: a daemon that answers at all is live; it is
   *ready* only when it will still accept fresh work (not draining).
   An overloaded daemon is ready — it degrades and sheds by policy —
   but the state rides along so orchestrators can stop routing to it
   early. *)
let ready ~ready:r ~draining ~overload_state =
  frame
    [
      ("type", Json.Str "ready");
      ("ready", Json.Bool r);
      ("draining", Json.Bool draining);
      ("overload_state", Json.Str (overload_state_name overload_state));
    ]

let error_frame ?job crash =
  (* Crash.to_json is already a rendered object; splice it verbatim so
     the error payload round-trips through Crash.of_json. *)
  let job_field =
    match job with
    | Some id -> Printf.sprintf "\"job\": %d, " id
    | None -> ""
  in
  Printf.sprintf "{\"type\": \"error\", %s\"crash\": %s}" job_field
    (Crash.to_json crash)

(* --- Verdict rendering ------------------------------------------------- *)

(* Timing-stripped by construction: elapsed seconds and heap words never
   enter the wire rendering, so a resumed daemon's verdicts diff
   byte-identical against an uninterrupted run's. *)
let report_json (r : Verify.report) : Json.t =
  let crashes fs =
    Json.Arr
      (List.map
         (fun (f : Verify.failure) ->
           match Json.parse (Crash.to_json f.Verify.crash) with
           | Ok v -> v
           | Error _ -> Json.Str (Crash.message f.Verify.crash))
         fs)
  in
  let expl =
    match r.Verify.expl with
    | None -> Json.Null
    | Some x ->
      Json.Obj
        [
          ("memo_hits", Json.Int x.Verify.x_memo_hits);
          ("memo_misses", Json.Int x.Verify.x_memo_misses);
          ("sleep_skips", Json.Int x.Verify.x_sleep_skips);
        ]
  in
  Json.Obj
    [
      ("spec", Json.Str r.Verify.spec_name);
      ("tier", Json.Str (Verify.tier_name r.Verify.tier));
      ( "seed",
        match r.Verify.seed with Some s -> Json.Int s | None -> Json.Null );
      ("initial_states", Json.Int r.Verify.initial_states);
      ("outcomes", Json.Int r.Verify.outcomes);
      ("diverged", Json.Int r.Verify.diverged);
      ("complete", Json.Bool r.Verify.complete);
      ("states", Json.Int r.Verify.states);
      ("failures", crashes r.Verify.failures);
      ("worker_crashes", crashes r.Verify.worker_crashes);
      ( "tripped",
        match r.Verify.budget with
        | Some { Budget.st_tripped = Some t; _ } -> Json.Str t
        | _ -> Json.Null );
      ("expl", expl);
    ]

let verdict ~job ~case ~digest:d ~memo ~fresh_units ~cancelled
    ?(degraded = false) ~reports () =
  frame
    [
      ("type", Json.Str "verdict");
      ("job", Json.Int job);
      ("case", Json.Str case);
      ("digest", Json.Str d);
      ("status", Json.Int (Verify.exit_code reports));
      ("memo", Json.Bool memo);
      ("fresh_units", Json.Int fresh_units);
      ("cancelled", Json.Bool cancelled);
      (* the QoS-demotion marker: the verdict was computed under a
         lower budget tier than the submission asked for, because the
         server was overloaded when the job started.  Excluded from
         the canonical projection (a flooded run legitimately differs
         here) and never memoized as the full-tier answer. *)
      ("degraded", Json.Bool degraded);
      ("reports", Json.Arr (List.map report_json reports));
    ]

(* The diff-stable subset of a verdict: what the CI resilience proof
   compares between an uninterrupted run and a kill-9'd-and-resumed one.
   Job ids, memo flags, fresh-unit counts and the per-report exploration
   counters legitimately differ across those runs (a replayed verdict
   has no exploration profile); case, status and the timing-stripped
   verdict content must not. *)
let canonical_verdict (v : Json.t) : Json.t =
  let get k = Option.value (Json.member k v) ~default:Json.Null in
  let reports =
    match get "reports" with
    | Json.Arr rs ->
      Json.Arr
        (List.map
           (function
             | Json.Obj kvs ->
               Json.Obj (List.filter (fun (k, _) -> k <> "expl") kvs)
             | r -> r)
           rs)
    | r -> r
  in
  Json.Obj [ ("case", get "case"); ("status", get "status"); ("reports", reports) ]

(* --- Job-status rendering ---------------------------------------------- *)

(* v2: the health fields (uptime_s, queue_depth, inflight, shed_total,
   memo_hit_rate, overload_state, journal_lag_bytes, journal_fault)
   joined the status/jobs renderings. *)
let schema_version = 2

let job_status_name = function
  | `Complete -> "complete"
  | `Degraded -> "degraded"
  | `Failed -> "FAILED"
  | `In_flight -> "in-flight"

(* The one renderer both the offline CLI ([fcsl jobs status DIR --json])
   and the daemon's status endpoint go through, so the two can never
   drift.  [extra] lets the live endpoint add queue/drain fields on top
   of the journal-derived rows. *)
let jobs_json ?(extra = []) (jobs : Journal.job list) : Json.t
    =
  let job (j : Journal.job) =
    Json.Obj
      [
        ("spec", Json.Str j.Journal.j_spec);
        ("params", Json.Str j.Journal.j_params);
        ("status", Json.Str (job_status_name j.Journal.j_status));
        ( "tier",
          match j.Journal.j_tier with
          | Some t -> Json.Str t
          | None -> Json.Null );
        ("units", Json.Int j.Journal.j_units);
        ("states", Json.Int j.Journal.j_states);
        ("failures", Json.Int j.Journal.j_failures);
        ( "tripped",
          match j.Journal.j_budget with
          | Some { Journal.bi_tripped = Some t; _ } -> Json.Str t
          | _ -> Json.Null );
      ]
  in
  Json.Obj
    (("schema_version", Json.Int schema_version)
    :: (extra @ [ ("jobs", Json.Arr (List.map job jobs)) ]))

let jobs_to_json ?extra jobs = Json.to_string (jobs_json ?extra jobs)
