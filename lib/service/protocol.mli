(** The verification service's wire protocol: newline-delimited JSON
    frames over a Unix-domain socket (see docs/SERVICE.md for the frame
    catalogue).

    Requests parse to {!request} or to a [Crash.Protocol_error] — a
    malformed frame is data the server answers with an error frame, not
    an exception.  Response builders return rendered one-line frames
    (no trailing newline); the verdict rendering is timing-stripped by
    construction so resumed-daemon verdicts diff byte-identical against
    uninterrupted ones. *)

open Fcsl_core

(** {1 QoS tiers} *)

type qos = Gold | Silver | Bronze

val qos_name : qos -> string
(** ["gold"], ["silver"], ["bronze"]. *)

val qos_of_name : string -> qos option

val qos_demote : qos -> qos
(** One rung down the ladder: [Gold -> Silver -> Bronze -> Bronze].
    What an overloaded server demotes an accepted submission to;
    bronze, having nowhere lower to go, is shed instead. *)

val qos_limits :
  ?tick_hook:(unit -> unit) -> ?cancel:(unit -> bool) -> qos -> Budget.limits
(** The ladder mapping: gold is unbounded, silver gets a 20s wall
    clock, bronze 5s plus a 20k-state ceiling.  All three thread the
    given [cancel] probe and [tick_hook] through every ladder rung. *)

val digest : case:string -> qos:qos -> string
(** The service-level cache key: ["case=NAME;qos=TIER"].  Embeds the
    case name, so digests never collide across cases. *)

val case_of_digest : string -> string option
val qos_of_digest : string -> qos option

(** {1 Requests} *)

type request =
  | Ping
  | Submit of { case : string; qos : qos }
  | Status
  | Health
  | Ready
  | Cancel of int
  | Drain

val request_of_json : Json.t -> (request, Crash.t) result
val parse_request : string -> (request, Crash.t) result
(** Parse one frame line.  Every failure mode — bad JSON, a non-object,
    a missing/unknown op, missing fields — is a {!Crash.Protocol_error}
    result, never an exception. *)

val request_to_json : request -> Json.t
(** The client-side rendering; [parse_request] inverts it. *)

(** {1 Response frames} *)

val pong : string
val ack : job:int -> digest:string -> position:int -> cached:bool -> string
(** [cached] when {!Journal.verdict_of_digest} already holds a verdict
    for this digest — the job will be served from the memo without
    occupying a cold-queue slot. *)

val shed : reason:string -> queue:int -> string
(** The structured overload answer: ["queue-full"] past the bound,
    ["draining"] after SIGTERM.  Never a hang, never a silent drop. *)

val progress : job:int -> states:int -> string
val drained : string

(** {1 Health and readiness} *)

type overload_state = Normal | Overloaded

val overload_state_name : overload_state -> string
(** ["normal"], ["overloaded"]. *)

val health_fields :
  ?uptime_s:float ->
  ?queue_depth:int ->
  ?inflight:int ->
  ?memo_hit_rate:float ->
  ?journal_lag_bytes:int ->
  ?journal_fault:Crash.t ->
  shed_total:int ->
  overload_state:overload_state ->
  unit ->
  (string * Json.t) list
(** The one health rendering, shared by the live [health] frame, the
    live [status] frame's extra fields, and the offline
    [fcsl jobs status --json] (which passes [None] for the live-only
    gauges — they render as [null]). *)

val ready :
  ready:bool -> draining:bool -> overload_state:overload_state -> string
(** The [ready] frame.  Liveness vs readiness: answering at all is
    liveness; [ready] is true only while the daemon still accepts fresh
    work (not draining).  Overload does not unready the daemon — it
    degrades by policy — but the state rides along. *)

val error_frame : ?job:int -> Crash.t -> string
(** [{"type": "error", "crash": {...}}] with the crash rendered by
    [Crash.to_json], so clients round-trip it through [Crash.of_json].
    [job] is set when the error terminates a specific submission
    (engine exceptions) rather than a malformed frame. *)

val report_json : Verify.report -> Json.t
(** Timing-stripped: elapsed seconds and heap words never enter the
    rendering (the budget only contributes its trip reason). *)

val verdict :
  job:int ->
  case:string ->
  digest:string ->
  memo:bool ->
  fresh_units:int ->
  cancelled:bool ->
  ?degraded:bool ->
  reports:Verify.report list ->
  unit ->
  string
(** The terminal frame of a submission; ["status"] is
    [Verify.exit_code reports].  [degraded] (default false) marks a
    verdict computed under a QoS tier demoted by overload; such a
    verdict is never memoized as the full-tier answer. *)

val canonical_verdict : Json.t -> Json.t
(** Project a verdict frame onto its diff-stable subset (case, status,
    reports minus exploration counters) — what the CI resilience proof
    compares across daemon restarts.  Job ids, memo flags, fresh-unit
    counts and exploration profiles legitimately differ; these fields
    must not. *)

(** {1 Job-status rendering} *)

val schema_version : int
(** Version 2 of the jobs-status JSON schema (v2 added the health
    fields). *)

val jobs_json : ?extra:(string * Json.t) list -> Journal.job list -> Json.t
val jobs_to_json : ?extra:(string * Json.t) list -> Journal.job list -> string
(** The one renderer shared by [fcsl jobs status DIR --json] and the
    daemon's status endpoint.  [extra] fields (live queue depth, drain
    flag) land between ["schema_version"] and ["jobs"]. *)
