(** The robust line writer shared by the server's and client's NDJSON
    transports: loops until the whole line (plus newline) is written,
    retries [EINTR] immediately, waits for writability on
    [EAGAIN]/[EWOULDBLOCK], and never tears a frame on a partial
    [write].  Hard socket errors ([EPIPE], [ECONNRESET], ...) still
    raise [Unix.Unix_error]; a peer that stays unwritable past
    {!stall_s} raises {!Stalled}. *)

val stall_s : float
(** How long a blocked writer waits for the peer to drain (10 s). *)

exception Stalled

val write_line : Unix.file_descr -> string -> unit
