(** The watchdog behind [fcsl serve --supervise]: spawn the daemon as a
    child process, restart it with resume semantics when it dies
    (crash, kill -9, OOM), give up after too many failures in a sliding
    window (see docs/SERVICE.md §6).

    The supervisor holds no daemon state — the journal is the restart
    contract: every child after the first runs with [--resume], so the
    in-flight ledger is re-enqueued and memoized verdicts survive. *)

val exit_gave_up : int
(** The stable exit code (4) for "the restart budget is exhausted" —
    disjoint from the verdict codes 0..3, so orchestrators can tell a
    crash loop from a drained daemon. *)

type config = {
  sv_restart_limit : int;
      (** give up once this many failures land inside the window *)
  sv_window_s : float;  (** the sliding failure window, seconds *)
  sv_backoff_base_s : float;
      (** base restart delay; doubles per failure in the window, with
          the jitter of [Pool.backoff_delay] *)
  sv_backoff_seed : int;  (** jitter seed (deterministic schedules) *)
  sv_pidfile : string option;
      (** write the current child's pid here after each spawn — how the
          chaos harness (and an operator's [kill]) finds the daemon
          under the supervisor *)
  sv_log : string -> unit;  (** one line per supervision event *)
}

val config :
  ?restart_limit:int ->
  ?window_s:float ->
  ?backoff_base_s:float ->
  ?backoff_seed:int ->
  ?pidfile:string ->
  ?log:(string -> unit) ->
  unit ->
  config
(** Defaults: 5 failures in 60 s, 0.25 s base backoff, seed 0, no
    pidfile, silent. *)

val run : config -> spawn:(restart:bool -> int) -> int
(** Supervise: call [spawn] (which must fork a daemon child and return
    its pid — the caller owns the fork, so no fork ever happens under a
    process that already spawned domains), wait, classify.  A child
    exiting 0 (drained) ends supervision with 0; any other death is a
    failure answered with a jittered-backoff restart ([restart:true] —
    the child must resume), until the window fills and the supervisor
    returns {!exit_gave_up}.  SIGTERM/SIGINT to the supervisor are
    forwarded to the child as SIGTERM (graceful drain), after which the
    clean exit propagates. *)
