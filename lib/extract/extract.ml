(* Program extraction: compile surface-language procedures into directly
   executable OCaml running on the real atomic heap, with parallel
   composition realized by OCaml 5 domains.

   This erases all auxiliary state — exactly the paper's erasure story
   (Section 3.4): the verified program's physical projection runs on
   actual hardware.  Domains are heavyweight, so forks deeper than
   [domain_budget] degrade to sequential left-then-right execution
   (which is one of the admissible schedules, hence still correct). *)

open Fcsl_heap
open Fcsl_lang.Ast

exception Extraction_error of string

let error fmt = Fmt.kstr (fun s -> raise (Extraction_error s)) fmt

(* Environments are persistent maps: binding in one [par] arm must not
   leak into the other, and lookup stays logarithmic however deep the
   recursion rebinds. *)
module Env = Map.Make (String)

type env = Value.t Env.t

let lookup env x =
  match Env.find_opt x env with
  | Some v -> v
  | None -> error "unbound variable %s" x

let as_ptr = function
  | Value.Ptr p -> p
  | v -> error "expected pointer, got %a" Value.pp v

let as_bool = function
  | Value.Bool b -> b
  | v -> error "expected boolean, got %a" Value.pp v

let field_get f v =
  match Value.as_node v with
  | Some (m, l, r) -> (
    match f with
    | Mark -> Value.bool m
    | Left -> Value.ptr l
    | Right -> Value.ptr r)
  | None -> error "not a graph node: %a" Value.pp v

let field_set f x v =
  match Value.as_node v with
  | Some (m, l, r) -> (
    match (f, x) with
    | Mark, Value.Bool b -> Value.node ~marked:b ~left:l ~right:r
    | Left, Value.Ptr q -> Value.node ~marked:m ~left:q ~right:r
    | Right, Value.Ptr q -> Value.node ~marked:m ~left:l ~right:q
    | _ -> error "ill-typed field write")
  | None -> error "not a graph node: %a" Value.pp v

(* A single field read is one atomic load of the node cell plus a pure
   projection. *)
let read_field rh p f =
  if Ptr.is_null p then error "null dereference"
  else field_get f (Real_heap.read rh p)

let rec eval rh env = function
  | Null -> Value.ptr Ptr.null
  | Bool b -> Value.bool b
  | Int n -> Value.int n
  | Var x -> lookup env x
  | Field (e, f) -> read_field rh (as_ptr (eval rh env e)) f
  | Eq (a, b) -> Value.bool (Value.equal (eval rh env a) (eval rh env b))
  | Not e -> Value.bool (not (as_bool (eval rh env e)))
  | And (a, b) ->
    Value.bool (as_bool (eval rh env a) && as_bool (eval rh env b))
  | Or (a, b) -> Value.bool (as_bool (eval rh env a) || as_bool (eval rh env b))
  | Pair_fst e -> (
    match eval rh env e with
    | Value.Pair (a, _) -> a
    | v -> error "expected pair, got %a" Value.pp v)
  | Pair_snd e -> (
    match eval rh env e with
    | Value.Pair (_, b) -> b
    | v -> error "expected pair, got %a" Value.pp v)

exception Returned of Value.t

(* Execute a command for its effects; raises [Returned] on return. *)
let rec exec_cmd rh procs ~budget env cmd : env =
  match cmd with
  | Skip -> env
  | Return e -> raise (Returned (eval rh env e))
  | Seq (a, b) ->
    let env = exec_cmd rh procs ~budget env a in
    exec_cmd rh procs ~budget env b
  | If (e, t, f) ->
    exec_cmd rh procs ~budget env (if as_bool (eval rh env e) then t else f)
  | Assign (e, f, v) ->
    let p = as_ptr (eval rh env e) in
    if Ptr.is_null p then error "null dereference";
    let value = eval rh env v in
    (* read-modify-write of one node field, retried atomically: the only
       program that writes a node's l/r fields is its marker, so a plain
       blind update of the projected field is what the algorithms mean;
       we still perform it with a CAS loop to stay phys-accurate. *)
    let rec update () =
      let current = Real_heap.read rh p in
      let updated = field_set f value current in
      if Real_heap.cas rh p ~expect:current ~replace:updated then ()
      else update ()
    in
    update ();
    env
  | BindCmd (pat, rhs, k) ->
    let v = exec_rhs rh procs ~budget env rhs in
    let env =
      match (pat, v) with
      | Pvar x, v -> Env.add x v env
      | Ppair (a, b), Value.Pair (va, vb) -> Env.add b vb (Env.add a va env)
      | Ppair _, v -> error "pattern expects a pair, got %a" Value.pp v
    in
    exec_cmd rh procs ~budget env k

and exec_rhs rh procs ~budget env rhs : Value.t =
  match rhs with
  | Expr e -> eval rh env e
  | Cas (e, f, old_v, new_v) ->
    let p = as_ptr (eval rh env e) in
    if Ptr.is_null p then error "null dereference";
    let expected_field = eval rh env old_v in
    let replacement_field = eval rh env new_v in
    (* CAS on one field of the node: witness the whole cell, check the
       field, swing the whole cell — a single hardware CAS. *)
    let current = Real_heap.read rh p in
    if Value.equal (field_get f current) expected_field then
      Value.bool
        (Real_heap.cas rh p ~expect:current
           ~replace:(field_set f replacement_field current))
    else Value.bool false
  | Call (name, args) ->
    let vargs = List.map (eval rh env) args in
    call rh procs ~budget name vargs
  | Par (r1, r2) ->
    if budget > 0 then begin
      let d =
        Domain.spawn (fun () -> exec_rhs rh procs ~budget:(budget - 1) env r1)
      in
      let v2 = exec_rhs rh procs ~budget:(budget - 1) env r2 in
      let v1 = Domain.join d in
      Value.pair v1 v2
    end
    else
      let v1 = exec_rhs rh procs ~budget env r1 in
      let v2 = exec_rhs rh procs ~budget env r2 in
      Value.pair v1 v2

and call rh procs ~budget name vargs : Value.t =
  let p =
    match List.find_opt (fun p -> String.equal p.p_name name) procs with
    | Some p -> p
    | None -> error "unknown procedure %s" name
  in
  if List.length vargs <> List.length p.p_params then
    error "%s: arity mismatch" name;
  let env =
    List.fold_left2
      (fun env (param, _) v -> Env.add param v env)
      Env.empty p.p_params vargs
  in
  match exec_cmd rh procs ~budget env p.p_body with
  | _ -> Value.unit
  | exception Returned v -> v

(* Entry point: run [proc] on a functional heap snapshot with real
   parallelism, returning the result and the final heap snapshot. *)
let run ?(domain_budget = 3) (procs : program) ~proc ~(args : Value.t list)
    (heap : Heap.t) : Heap.t * Value.t =
  let rh = Real_heap.of_heap heap in
  let v = call rh procs ~budget:domain_budget proc args in
  (Real_heap.to_heap rh, v)
