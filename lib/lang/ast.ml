(* Abstract syntax of the FCSL surface language — the concrete notation
   of the paper's Figure 1.  The language is deliberately small: it
   covers the fine-grained heap programs of the case-study suite
   (field reads and writes, CAS, parallel composition, recursion), and
   elaborates into the embedded DSL or runs on the untyped reference
   interpreter for differential testing. *)

(* Node fields: the components of the (m, l, r) triple of Section 2.1. *)
type field = Mark | Left | Right

let pp_field ppf = function
  | Mark -> Fmt.string ppf "m"
  | Left -> Fmt.string ppf "l"
  | Right -> Fmt.string ppf "r"

type expr =
  | Null
  | Bool of bool
  | Int of int
  | Var of string
  | Field of expr * field (* x->m, x->l, x->r *)
  | Eq of expr * expr
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Pair_fst of expr (* rs.1 *)
  | Pair_snd of expr (* rs.2 *)

type rhs =
  | Expr of expr
  | Cas of expr * field * expr * expr (* CAS(x->m, old, new) *)
  | Call of string * expr list
  | Par of rhs * rhs (* (span(a) || span(b)) *)

type cmd =
  | Skip
  | Return of expr
  | Seq of cmd * cmd
  | BindCmd of pattern * rhs * cmd (* p <- rhs; rest *)
  | If of expr * cmd * cmd
  | Assign of expr * field * expr (* x->l := e *)

and pattern = Pvar of string | Ppair of string * string

type proc = {
  p_name : string;
  p_params : (string * string) list; (* name : type (types are labels) *)
  p_return : string;
  p_body : cmd;
}

type program = proc list

(* Structural equality (modulo nothing — used by round-trip tests). *)

let rec equal_expr a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Var x, Var y -> String.equal x y
  | Field (e, f), Field (e', f') -> equal_expr e e' && f = f'
  | Eq (a1, a2), Eq (b1, b2) | And (a1, a2), And (b1, b2)
  | Or (a1, a2), Or (b1, b2) ->
    equal_expr a1 b1 && equal_expr a2 b2
  | Not e, Not e' | Pair_fst e, Pair_fst e' | Pair_snd e, Pair_snd e' ->
    equal_expr e e'
  | ( ( Null | Bool _ | Int _ | Var _ | Field _ | Eq _ | Not _ | And _ | Or _
      | Pair_fst _ | Pair_snd _ ),
      _ ) ->
    false

let rec equal_rhs a b =
  match (a, b) with
  | Expr e, Expr e' -> equal_expr e e'
  | Cas (e, f, o, n), Cas (e', f', o', n') ->
    equal_expr e e' && f = f' && equal_expr o o' && equal_expr n n'
  | Call (n, args), Call (n', args') ->
    String.equal n n'
    && List.length args = List.length args'
    && List.for_all2 equal_expr args args'
  | Par (a1, a2), Par (b1, b2) -> equal_rhs a1 b1 && equal_rhs a2 b2
  | (Expr _ | Cas _ | Call _ | Par _), _ -> false

let equal_pattern a b =
  match (a, b) with
  | Pvar x, Pvar y -> String.equal x y
  | Ppair (x1, x2), Ppair (y1, y2) -> String.equal x1 y1 && String.equal x2 y2
  | (Pvar _ | Ppair _), _ -> false

let rec equal_cmd a b =
  match (a, b) with
  | Skip, Skip -> true
  | Return e, Return e' -> equal_expr e e'
  | Seq (a1, a2), Seq (b1, b2) -> equal_cmd a1 b1 && equal_cmd a2 b2
  | BindCmd (p, r, k), BindCmd (p', r', k') ->
    equal_pattern p p' && equal_rhs r r' && equal_cmd k k'
  | If (e, t, f), If (e', t', f') ->
    equal_expr e e' && equal_cmd t t' && equal_cmd f f'
  | Assign (e, fl, v), Assign (e', fl', v') ->
    equal_expr e e' && fl = fl' && equal_expr v v'
  | (Skip | Return _ | Seq _ | BindCmd _ | If _ | Assign _), _ -> false

let equal_proc a b =
  String.equal a.p_name b.p_name
  && a.p_params = b.p_params
  && String.equal a.p_return b.p_return
  && equal_cmd a.p_body b.p_body

let equal_program a b =
  List.length a = List.length b && List.for_all2 equal_proc a b

(* Sequencing normal form: [Seq] right-associated, binds absorbing
   their continuations, and [Skip] a unit of sequencing — the shape the
   parser produces.  Printing reshuffles these without changing
   meaning, so round-trip tests compare normal forms.  Dropping the
   [Skip] units matters: a left-nested [Seq (Seq (bind, Skip), Skip)]
   fuses both skips into the bind's continuation one at a time, while
   its reparse carries them as a literal [Seq (Skip, Skip)] — without
   the unit laws the two reach different normal forms. *)
let rec normalize = function
  | Seq (a, b) -> seq_comb (normalize a) (normalize b)
  | BindCmd (p, r, k) -> BindCmd (p, r, normalize k)
  | If (e, t, f) -> If (e, normalize t, normalize f)
  | (Skip | Return _ | Assign _) as c -> c

and seq_comb a b =
  match (a, b) with
  | Skip, _ -> b
  | _, Skip -> a
  | Seq (x, y), _ -> seq_comb x (seq_comb y b)
  | BindCmd (p, r, Skip), _ -> BindCmd (p, r, b)
  | BindCmd (p, r, k), _ -> BindCmd (p, r, seq_comb k b)
  | (Return _ | Assign _ | If _), _ -> Seq (a, b)

(* The canonical span procedure (Figure 1), as an AST value: the parsing
   tests check that the concrete syntax file elaborates to exactly
   this. *)
let span_ast : proc =
  {
    p_name = "span";
    p_params = [ ("x", "ptr") ];
    p_return = "bool";
    p_body =
      If
        ( Eq (Var "x", Null),
          Return (Bool false),
          BindCmd
            ( Pvar "b",
              Cas (Var "x", Mark, Bool false, Bool true),
              If
                ( Var "b",
                  BindCmd
                    ( Ppair ("rl", "rr"),
                      Par
                        ( Call ("span", [ Field (Var "x", Left) ]),
                          Call ("span", [ Field (Var "x", Right) ]) ),
                      Seq
                        ( If
                            ( Not (Var "rl"),
                              Assign (Var "x", Left, Null),
                              Skip ),
                          Seq
                            ( If
                                ( Not (Var "rr"),
                                  Assign (Var "x", Right, Null),
                                  Skip ),
                              Return (Bool true) ) ) ),
                  Return (Bool false) ) ) );
  }
