(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 6) and times the mechanized artifacts
   with bechamel.

   Structure (one bechamel Test group per table/figure):

   - table1/<program>     verification wall-time of each Table 1 row
                          (the Build-column analogue)
   - table2/reuse-matrix  computing the concurroid-reuse matrix
   - fig2/span-replay     the deterministic Figure 2 execution
   - fig5/dep-graph       computing the dependency diagram
   - scaling/span-exec:n  executing span on random connected graphs
   - scaling/stability    the stability checker over the SpanTree universe
   - scaling/explore      exhaustive exploration of a racy CAS pair

   After the micro-benchmarks, the harness prints the regenerated
   Table 1 (line counts + verification times + verdicts), Table 2, the
   Figure 2 stage trace, and Figure 5 — the same rows/series the paper
   reports. *)

open Bechamel
open Toolkit
open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux
module Tables = Fcsl_report.Tables
module Registry = Fcsl_report.Registry

(* --- Table 1: one benchmark per verified program. --- *)

let table1_tests =
  List.map
    (fun (c : Registry.case) ->
      Test.make ~name:c.Registry.c_name
        (Staged.stage (fun () ->
             let reports = c.Registry.c_verify () in
             if not (List.for_all Verify.ok reports) then
               failwith (c.Registry.c_name ^ ": verification failed"))))
    Registry.all

(* --- Table 2 / Figure 5: matrix and diagram computation. --- *)

let table2_test =
  Test.make ~name:"reuse-matrix"
    (Staged.stage (fun () ->
         if not (Tables.table2_matches_paper ()) then
           failwith "Table 2 deviates from the paper"))

let fig5_test =
  Test.make ~name:"dep-graph"
    (Staged.stage (fun () ->
         if not (Tables.fig5_matches_paper ()) then
           failwith "Figure 5 deviates from the paper"))

(* --- Figure 2: deterministic replay of the paper's staging. --- *)

let fig2_replay () =
  let pv = Label.make "bench_fig2_priv" in
  let sp = Label.make "bench_fig2_span" in
  let g0 = Graph_catalog.fig2_graph () in
  let w = World.of_list [ Priv.make pv ] in
  let st =
    State.singleton pv
      (Slice.make
         ~self:(Aux.heap (Graph.to_heap g0))
         ~joint:Heap.empty ~other:(Aux.heap Heap.empty))
  in
  let genv, mine = Sched.genv_of_state w st in
  match
    Sched.run_with_chooser
      ~choose:(fun ~step:_ _ -> 0)
      genv mine
      (Span.span_root ~pv ~sp (Ptr.of_int 1))
  with
  | Sched.Finished (true, final) -> (
    match Graph.of_heap (Priv.pv_self pv final) with
    | Some g when Graph.spanning g0 g (Ptr.of_int 1) (Graph.dom_set g) -> ()
    | _ -> failwith "fig2: not a spanning tree")
  | _ -> failwith "fig2: replay failed"

let fig2_test = Test.make ~name:"span-replay" (Staged.stage fig2_replay)

(* --- Scaling series: span execution on random graphs. --- *)

let span_exec n =
  Staged.stage (fun () ->
      let rng = Random.State.make [| 7; n |] in
      let g0 = Graph_catalog.random_connected_graph ~rng n in
      let pv = Label.make "bench_scale_priv" in
      let sp = Label.make "bench_scale_span" in
      let w = World.of_list [ Priv.make pv ] in
      let st =
        State.singleton pv
          (Slice.make
             ~self:(Aux.heap (Graph.to_heap g0))
             ~joint:Heap.empty ~other:(Aux.heap Heap.empty))
      in
      let genv, mine = Sched.genv_of_state w st in
      match
        Sched.run_random ~seed:n ~fuel:1_000_000 genv mine
          (Span.span_root ~pv ~sp (Ptr.of_int 1))
      with
      | Sched.Finished (true, _) -> ()
      | _ -> failwith "span exec failed")

let span_scaling_test =
  Test.make_indexed ~name:"span-exec" ~fmt:"%s:%d" ~args:[ 8; 16; 32 ] span_exec

let stability_test =
  let sp = Label.make "bench_stab_span" in
  let conc = Span.concurroid sp in
  let w = World.of_list [ conc ] in
  let states =
    List.map (fun s -> State.singleton sp s) (Concurroid.enum conc)
  in
  Test.make ~name:"stability"
    (Staged.stage (fun () ->
         if
           not
             (Stability.is_stable
                (Stability.check w ~states
                   (Span.assert_in_self sp (Ptr.of_int 1))))
         then failwith "stability bench failed"))

(* Exhaustive exploration of a racy CAS pair under interference, with
   and without configuration memoization (the naive/memoized engine
   comparison of DESIGN.md). *)
let explore_tests =
  let sp = Label.make "bench_explore_span" in
  let conc = Span.concurroid sp in
  let w = World.of_list [ conc ] in
  let g = Graph_catalog.graph_of [ (Ptr.of_int 1, Ptr.null, Ptr.null) ] in
  let st =
    State.singleton sp
      (Slice.make ~self:(Aux.set Ptr.Set.empty) ~joint:(Graph.to_heap g)
         ~other:(Aux.set Ptr.Set.empty))
  in
  let body ~dedup () =
    let genv, mine = Sched.genv_of_state ~interfere:(World.labels w) w st in
    let prog =
      Prog.par
        (Prog.act (Span.trymark sp (Ptr.of_int 1)))
        (Prog.act (Span.trymark sp (Ptr.of_int 1)))
    in
    let outs, _ = Sched.explore ~dedup genv mine prog in
    if outs = [] then failwith "explore bench failed"
  in
  [
    Test.make ~name:"explore-naive" (Staged.stage (body ~dedup:false));
    Test.make ~name:"explore-dedup" (Staged.stage (body ~dedup:true));
  ]

(* --- Ablations: the design choices DESIGN.md calls out. --- *)

(* 1. Interference depth: how verification cost scales with the
   env_budget bound. *)
let ablation_env_budget =
  Test.make_indexed ~name:"span-tp-env-budget" ~fmt:"%s:%d" ~args:[ 0; 1; 2 ]
    (fun budget ->
      Staged.stage (fun () ->
          let sp = Span.sp_label in
          let w = Span.world ~max_nodes:2 () in
          let init = Span.init_states ~max_nodes:2 () in
          let r =
            Verify.check_triple ~fuel:20 ~env_budget:budget ~world:w ~init
              (Span.span sp (Ptr.of_int 1))
              (Span.span_spec sp (Ptr.of_int 1))
          in
          if not (Verify.ok r) then failwith "ablation: span_tp failed"))

(* 2. The blocking reduction: verifying CG increment with the await-
   guarded lock (the default) vs the raw spin loop.  The raw spin is
   exponentially worse; its exploration is capped so the benchmark
   terminates, demonstrating the gap rather than hanging. *)
let incr_with_raw_spin () =
  let module I = Cg_incr.Cas in
  let open Prog in
  let raw_lock =
    Prog.ffix
      (fun loop () ->
        let* b = act (Caslock.try_lock ~await:false I.label I.cfg) in
        if b then ret () else loop ())
      ()
  in
  let prog =
    let* () = raw_lock in
    let* v = act (Caslock.read I.label I.cfg Cg_incr.Cas.x_cell) in
    let v = Option.value (Fcsl_heap.Value.as_int v) ~default:0 in
    let* () =
      act (Caslock.write I.label I.cfg Cg_incr.Cas.x_cell (Fcsl_heap.Value.int (v + 1)))
    in
    Caslock.unlock I.label I.cfg I.resource ~delta:(Aux.nat 1)
  in
  Verify.check_triple ~fuel:12 ~env_budget:1 ~max_outcomes:20_000
    ~world:(I.world ()) ~init:(I.init_states ()) prog
    (I.incr_spec I.label ())

let ablation_blocking =
  [
    Test.make ~name:"incr-await-lock"
      (Staged.stage (fun () ->
           let module I = Cg_incr.Cas in
           if not (List.for_all Verify.ok (I.verify ~env_budget:1 ())) then
             failwith "ablation: await incr failed"));
    Test.make ~name:"incr-raw-spin-capped"
      (Staged.stage (fun () ->
           let r = incr_with_raw_spin () in
           if r.Verify.failures <> [] then failwith "ablation: spin incr failed"));
  ]

(* 3. Exhaustive vs randomized checking of the same triple. *)
let ablation_random =
  [
    Test.make ~name:"span-root-exhaustive"
      (Staged.stage (fun () ->
           if
             not
               (List.for_all Verify.ok (Span.verify_span_root ~max_nodes:3 ()))
           then failwith "ablation: exhaustive failed"));
    Test.make ~name:"span-root-randomized"
      (Staged.stage (fun () ->
           let pv = Span.pv_label and sp = Span.sp_label in
           let w = World.of_list [ Priv.make pv ] in
           let g = Graph_catalog.fig2_graph () in
           let st =
             State.singleton pv
               (Slice.make
                  ~self:(Aux.heap (Graph.to_heap g))
                  ~joint:Heap.empty ~other:(Aux.heap Heap.empty))
           in
           let r =
             Verify.check_triple_random ~fuel:1000 ~trials:50 ~world:w
               ~init:[ st ]
               (Span.span_root ~pv ~sp (Ptr.of_int 1))
               (Span.span_root_spec ~pv (Ptr.of_int 1))
           in
           if not (Verify.ok r) then failwith "ablation: randomized failed"));
  ]

(* 4. The extension beyond the paper: one client against both stack
   implementations through the abstract interface. *)
let extension_tests =
  [
    Test.make ~name:"abstract-stack-clients"
      (Staged.stage (fun () ->
           if not (List.for_all Verify.ok (Stack_intf.verify ())) then
             failwith "extension: stack clients failed"));
  ]

let all_tests =
  Test.make_grouped ~name:"fcsl" ~fmt:"%s/%s"
    [
      Test.make_grouped ~name:"table1" ~fmt:"%s/%s" table1_tests;
      Test.make_grouped ~name:"table2" ~fmt:"%s/%s" [ table2_test ];
      Test.make_grouped ~name:"fig2" ~fmt:"%s/%s" [ fig2_test ];
      Test.make_grouped ~name:"fig5" ~fmt:"%s/%s" [ fig5_test ];
      Test.make_grouped ~name:"scaling" ~fmt:"%s/%s"
        ([ span_scaling_test; stability_test ] @ explore_tests);
      Test.make_grouped ~name:"ablation" ~fmt:"%s/%s"
        ((ablation_env_budget :: ablation_blocking) @ ablation_random);
      Test.make_grouped ~name:"extension" ~fmt:"%s/%s" extension_tests;
    ]

(* Runs the bechamel suite and returns one row per benchmark:
   (name, ns/run, major-words/run) — also what BENCH_explore.json
   records. *)
let run_benchmarks () : (string * float * float) list =
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let instances = Instance.[ monotonic_clock; major_allocated ] in
  let raw = Benchmark.all cfg instances all_tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let estimate results name =
    match Hashtbl.find_opt results name with
    | None -> nan
    | Some ols -> (
      match Analyze.OLS.estimates ols with
      | Some (t :: _) -> t
      | Some [] | None -> nan)
  in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let words = Analyze.all ols Instance.major_allocated raw in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) times []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, ols) ->
           let time =
             match Analyze.OLS.estimates ols with
             | Some (t :: _) -> t
             | Some [] | None -> nan
           in
           (name, ols, time, estimate words name))
  in
  Fmt.pr "== Micro-benchmarks (bechamel, monotonic clock) ==@.";
  Fmt.pr "%-42s %13s %8s %14s@." "benchmark" "time/run" "r^2" "major-w/run";
  List.iter
    (fun (name, ols, time, mw) ->
      let r2 = Option.value (Analyze.OLS.r_square ols) ~default:nan in
      let pp_t ppf t =
        if t > 1e9 then Fmt.pf ppf "%10.2f s " (t /. 1e9)
        else if t > 1e6 then Fmt.pf ppf "%10.2f ms" (t /. 1e6)
        else if t > 1e3 then Fmt.pf ppf "%10.2f us" (t /. 1e3)
        else Fmt.pf ppf "%10.2f ns" t
      in
      Fmt.pr "%-42s %a %8.4f %14.0f@." name pp_t time r2 mw)
    rows;
  Fmt.pr "@.";
  List.map (fun (name, _, time, mw) -> (name, time, mw)) rows

(* --- Engine comparison: naive vs memoized vs memoized+parallel. ---

   Wall-clock of every Table 1 verification under the three engine
   configurations, with the verdict summaries cross-checked for
   equality (memoized replay is exact; the parallel merge reproduces
   the sequential accounting). *)

type engine_row = {
  er_name : string;
  er_naive : float;
  er_dedup : float;
  er_dedup_par : float;
  er_verdicts_equal : bool;
}

let verdict_summary reports =
  List.map
    (fun (r : Verify.report) ->
      ( r.Verify.spec_name,
        (Verify.ok r, r.Verify.tier),
        r.Verify.initial_states,
        r.Verify.outcomes,
        r.Verify.diverged,
        r.Verify.complete ))
    reports

let engine_comparison ~jobs () : engine_row list =
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let sweep ~dedup ~jobs =
    Verify.with_engine ~dedup ~jobs (fun () ->
        List.map
          (fun (c : Registry.case) -> timed c.Registry.c_verify)
          Registry.all)
  in
  let naive = sweep ~dedup:false ~jobs:1 in
  let dedup = sweep ~dedup:true ~jobs:1 in
  let dedup_par = sweep ~dedup:true ~jobs in
  List.map2
    (fun (c : Registry.case) ((rn, tn), ((rd, td), (rp, tp))) ->
      {
        er_name = c.Registry.c_name;
        er_naive = tn;
        er_dedup = td;
        er_dedup_par = tp;
        er_verdicts_equal =
          verdict_summary rn = verdict_summary rd
          && verdict_summary rd = verdict_summary rp;
      })
    Registry.all
    (List.map2 (fun a (b, c) -> (a, (b, c))) naive
       (List.map2 (fun a b -> (a, b)) dedup dedup_par))

let pp_engine_rows ppf rows =
  Fmt.pf ppf "%-14s %9s %9s %11s %8s@." "Program" "naive" "memoized"
    "memo+par" "verdicts";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-14s %8.3fs %8.3fs %10.3fs %8s@." r.er_name r.er_naive
        r.er_dedup r.er_dedup_par
        (if r.er_verdicts_equal then "equal" else "DIFFER"))
    rows;
  let tot f = List.fold_left (fun a r -> a +. f r) 0. rows in
  Fmt.pf ppf "%-14s %8.3fs %8.3fs %10.3fs@." "TOTAL"
    (tot (fun r -> r.er_naive))
    (tot (fun r -> r.er_dedup))
    (tot (fun r -> r.er_dedup_par))

(* --- Pruning comparison: footprint-based env-step pruning on vs off.

   Every Table 1 verification plus a synthetic entangled-client
   scenario (a snapshot reader running next to an untouched SpanTree
   concurroid — the configuration where pruning actually has env steps
   to skip; the Table 1 drivers are single-label worlds, so pruning is
   the identity there and the rows double as an overhead check).
   Verdicts are cross-checked at (spec_name, ok) granularity: outcome
   counts may legitimately shrink under pruning, verdicts may not. *)

type prune_row = {
  pr_name : string;
  pr_base : float;
  pr_pruned : float;
  pr_verdicts_equal : bool;
}

let prune_verdicts reports =
  List.map (fun (r : Verify.report) -> (r.Verify.spec_name, Verify.ok r)) reports

(* The entangled client: read_pair against a two-concurroid world. *)
let entangled_client () : Verify.report list =
  let sp = Label.make "bench_ent_span" in
  let w =
    World.of_list
      [ Snapshot.concurroid Snapshot.sp_label; Span.concurroid sp ]
  in
  let g =
    Graph_catalog.graph_of
      [ (Ptr.of_int 1, Ptr.of_int 2, Ptr.null);
        (Ptr.of_int 2, Ptr.null, Ptr.null) ]
  in
  let span_slice =
    Slice.make ~self:(Aux.set Ptr.Set.empty) ~joint:(Graph.to_heap g)
      ~other:(Aux.set Ptr.Set.empty)
  in
  let init =
    List.map (fun st -> State.add sp span_slice st) (Snapshot.init_states ())
  in
  [
    Verify.check_triple ~fuel:14 ~env_budget:2 ~world:w ~init
      (Snapshot.read_pair Snapshot.sp_label)
      (Snapshot.read_pair_spec Snapshot.sp_label);
  ]

let prune_comparison () : prune_row list =
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let row name f =
    let rb, tb = Verify.with_engine ~prune:false (fun () -> timed f) in
    let rp, tp = Verify.with_engine ~prune:true (fun () -> timed f) in
    {
      pr_name = name;
      pr_base = tb;
      pr_pruned = tp;
      pr_verdicts_equal = prune_verdicts rb = prune_verdicts rp;
    }
  in
  List.map
    (fun (c : Registry.case) -> row c.Registry.c_name c.Registry.c_verify)
    Registry.all
  @ [ row "entangled-snapshot" entangled_client ]

let pp_prune_rows ppf rows =
  Fmt.pf ppf "%-20s %11s %9s %9s %8s@." "Program" "no-prune" "pruned"
    "speedup" "verdicts";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-20s %10.3fs %8.3fs %8.2fx %8s@." r.pr_name r.pr_base
        r.pr_pruned
        (if r.pr_pruned > 0. then r.pr_base /. r.pr_pruned else nan)
        (if r.pr_verdicts_equal then "equal" else "DIFFER"))
    rows

(* --- POR comparison: sleep-set partial-order reduction on vs off. ---

   Both arms run WITHOUT memoization: under dedup every distinct
   configuration is already expanded exactly once — the lower bound POR
   targets — so the reduction would be invisible there.  Without it the
   arms count raw schedule expansions (Verify.report.states), the
   standard POR accounting.  Verdicts are cross-checked at (spec_name,
   ok) granularity: states and outcome counts must shrink, verdicts
   must not move.  The acceptance floor (docs/ANALYSIS.md §POR) is a
   >= 1.5x states reduction on the Treiber stack and the flat-combining
   stack. *)

type por_row = {
  po_name : string;
  po_full_states : int;
  po_por_states : int;
  po_full_s : float;
  po_por_s : float;
  po_verdicts_equal : bool;
  po_sleep_skips : int; (* subtrees the POR arm's sleep sets cut *)
  po_full_minor_words : float; (* minor-heap allocation per arm *)
  po_por_minor_words : float;
}

let por_reduction r =
  if r.po_por_states > 0 then
    float_of_int r.po_full_states /. float_of_int r.po_por_states
  else nan

let report_states reports =
  List.fold_left (fun acc (r : Verify.report) -> acc + r.Verify.states) 0 reports

(* The rows the acceptance floor is asserted on. *)
let por_targets = [ "Treiber stack"; "FC-stack" ]

(* Timing hygiene for the wall-clock gate: one unmeasured warm-up per
   arm (paging in code, warming allocator free-lists and the minor
   heap), then min-of-N — the minimum is the standard estimator for
   "what the code costs without scheduler noise", and the arms are
   compared on equal footing.  Recorded in BENCH_por.json. *)
let por_warmup = 1
let por_repeats = 5

let report_expl reports =
  List.fold_left
    (fun acc (r : Verify.report) -> Verify.merge_expl acc r.Verify.expl)
    None reports

let por_comparison () : por_row list =
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let best f =
    for _ = 1 to por_warmup do
      ignore (f ())
    done;
    let r, t0 = timed f in
    let t = ref t0 in
    for _ = 2 to por_repeats do
      let _, t' = timed f in
      if t' < !t then t := t'
    done;
    (r, !t)
  in
  let certs = Fcsl_analysis.Independence.certs_all () in
  let row (c : Registry.case) =
    let rf, tf =
      Verify.with_engine ~dedup:false ~por:false (fun () ->
          best c.Registry.c_verify)
    in
    let rp, tp =
      Verify.with_engine ~dedup:false ~por:true ~por_certs:certs (fun () ->
          best c.Registry.c_verify)
    in
    let skips, pwords =
      match report_expl rp with
      | Some x -> (x.Verify.x_sleep_skips, x.Verify.x_minor_words)
      | None -> (0, 0.)
    in
    {
      po_name = c.Registry.c_name;
      po_full_states = report_states rf;
      po_por_states = report_states rp;
      po_full_s = tf;
      po_por_s = tp;
      po_verdicts_equal = prune_verdicts rf = prune_verdicts rp;
      po_sleep_skips = skips;
      po_full_minor_words =
        (match report_expl rf with
        | Some x -> x.Verify.x_minor_words
        | None -> 0.);
      po_por_minor_words = pwords;
    }
  in
  List.map row Registry.all

let por_targets_met rows =
  List.for_all (fun r -> r.po_verdicts_equal) rows
  && List.for_all
       (fun name ->
         match List.find_opt (fun r -> r.po_name = name) rows with
         | Some r -> por_reduction r >= 1.5
         | None -> false)
       por_targets

(* The wall-clock gate: wherever the reduction is substantial (>= 1.5x
   fewer states), the reduced arm must also be faster in wall-clock —
   the whole point of the interned-move/bitset representation work.
   Rows where POR barely bites are exempt (the oracle is then pure
   overhead, bounded by the timing columns). *)
let por_wallclock_met rows =
  List.for_all
    (fun r -> not (por_reduction r >= 1.5) || r.po_por_s < r.po_full_s)
    rows

let pp_por_rows ppf rows =
  Fmt.pf ppf "%-14s %12s %12s %9s %8s %8s %9s %10s %8s@." "Program"
    "full-states" "por-states" "reduction" "full" "por" "speedup" "skips"
    "verdicts";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-14s %12d %12d %8.2fx %7.3fs %7.3fs %8.2fx %10d %8s@."
        r.po_name r.po_full_states r.po_por_states (por_reduction r)
        r.po_full_s r.po_por_s
        (if r.po_por_s > 0. then r.po_full_s /. r.po_por_s else nan)
        r.po_sleep_skips
        (if r.po_verdicts_equal then "equal" else "DIFFER"))
    rows;
  let tot f = List.fold_left (fun a r -> a + f r) 0 rows in
  let sf = tot (fun r -> r.po_full_states)
  and sp = tot (fun r -> r.po_por_states) in
  Fmt.pf ppf "%-14s %12d %12d %8.2fx@." "TOTAL" sf sp
    (if sp > 0 then float_of_int sf /. float_of_int sp else nan)

(* --- Robustness: budget-enforcement overhead (docs/ROBUSTNESS.md). ---

   Every Table 1 verification unbudgeted vs under an armed-but-untripped
   budget (ceilings far above any real consumption), so every explored
   configuration pays the cooperative polling cost and nothing ever
   trips.  Verdicts — including the tier — must be bit-identical; the
   wall-clock overhead is the price of resilience, budgeted at < 5%. *)

type robust_row = {
  rb_name : string;
  rb_unbudgeted : float;
  rb_armed : float;
  rb_verdicts_equal : bool;
}

let rb_overhead_pct r =
  if r.rb_unbudgeted > 0. then
    (r.rb_armed -. r.rb_unbudgeted) /. r.rb_unbudgeted *. 100.
  else nan

let armed_untripped_limits () =
  Budget.limits ~deadline_s:3600.0 ~max_states:max_int
    ~max_major_words:max_int ()

let robust_comparison () : robust_row list =
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* best of three: the overhead being measured is well under the
     noise floor of a single wall-clock sample *)
  let best3 f =
    let r, t1 = timed f in
    let _, t2 = timed f in
    let _, t3 = timed f in
    (r, Float.min t1 (Float.min t2 t3))
  in
  List.map
    (fun (c : Registry.case) ->
      let rb, tb = best3 c.Registry.c_verify in
      let ra, ta =
        Verify.with_engine ~budget:(armed_untripped_limits ()) (fun () ->
            best3 c.Registry.c_verify)
      in
      {
        rb_name = c.Registry.c_name;
        rb_unbudgeted = tb;
        rb_armed = ta;
        rb_verdicts_equal = verdict_summary rb = verdict_summary ra;
      })
    Registry.all

let pp_robust_rows ppf rows =
  Fmt.pf ppf "%-14s %11s %9s %9s %8s@." "Program" "unbudgeted" "armed"
    "overhead" "verdicts";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-14s %10.3fs %8.3fs %8.1f%% %8s@." r.rb_name r.rb_unbudgeted
        r.rb_armed (rb_overhead_pct r)
        (if r.rb_verdicts_equal then "equal" else "DIFFER"))
    rows;
  let tot f = List.fold_left (fun a r -> a +. f r) 0. rows in
  let tb = tot (fun r -> r.rb_unbudgeted) and ta = tot (fun r -> r.rb_armed) in
  Fmt.pf ppf "%-14s %10.3fs %8.3fs %8.1f%%@." "TOTAL" tb ta
    (if tb > 0. then (ta -. tb) /. tb *. 100. else nan)

(* --- Durability: journal-armed overhead (docs/ROBUSTNESS.md). ---

   Every Table 1 verification unjournaled vs journaling to a
   write-ahead journal under the default group-commit policy
   (Interval 0.05).  Every repetition opens a FRESH journal directory
   — a reused one would replay completed units and fake a speedup —
   and verdicts (including the tier) must be identical.  The overhead
   is the price of surviving kill -9, budgeted at < 5%. *)

type journal_row = {
  jr_name : string;
  jr_bare : float;
  jr_journaled : float;
  jr_verdicts_equal : bool;
}

let jr_overhead_pct r =
  if r.jr_bare > 0. then (r.jr_journaled -. r.jr_bare) /. r.jr_bare *. 100.
  else nan

let journal_comparison () : journal_row list =
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let fresh_dir =
    let n = ref 0 in
    fun () ->
      incr n;
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "fcsl-bench-journal-%d-%d" (Unix.getpid ()) !n)
  in
  let journaled f () =
    let j = Journal.openj ~fsync:(Journal.Interval 0.05) (fresh_dir ()) in
    Fun.protect
      ~finally:(fun () -> Journal.close j)
      (fun () -> Verify.with_engine ~journal:(Some j) f)
  in
  let best3 f =
    let r, t1 = timed f in
    let _, t2 = timed f in
    let _, t3 = timed f in
    (r, Float.min t1 (Float.min t2 t3))
  in
  List.map
    (fun (c : Registry.case) ->
      let rb, tb = best3 c.Registry.c_verify in
      let rj, tj = best3 (journaled c.Registry.c_verify) in
      {
        jr_name = c.Registry.c_name;
        jr_bare = tb;
        jr_journaled = tj;
        jr_verdicts_equal = verdict_summary rb = verdict_summary rj;
      })
    Registry.all

let pp_journal_rows ppf rows =
  Fmt.pf ppf "%-14s %11s %10s %9s %8s@." "Program" "unjournaled" "journaled"
    "overhead" "verdicts";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-14s %10.3fs %9.3fs %8.1f%% %8s@." r.jr_name r.jr_bare
        r.jr_journaled (jr_overhead_pct r)
        (if r.jr_verdicts_equal then "equal" else "DIFFER"))
    rows;
  let tot f = List.fold_left (fun a r -> a +. f r) 0. rows in
  let tb = tot (fun r -> r.jr_bare) and tj = tot (fun r -> r.jr_journaled) in
  Fmt.pf ppf "%-14s %10.3fs %9.3fs %8.1f%%@." "TOTAL" tb tj
    (if tb > 0. then (tj -. tb) /. tb *. 100. else nan)

(* --- BENCH_explore.json: the machine-readable record. --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_num x = if Float.is_nan x then "null" else Printf.sprintf "%.1f" x

let write_bench_json ~path ~jobs (bench_rows : (string * float * float) list)
    (engine_rows : engine_row list) =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr "{\n  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, ns, mw) ->
      pr "    {\"name\": \"%s\", \"ns_per_run\": %s, \"major_words\": %s}%s\n"
        (json_escape name) (json_num ns) (json_num mw)
        (if i = List.length bench_rows - 1 then "" else ","))
    bench_rows;
  pr "  ],\n  \"engine_comparison\": {\n";
  pr "    \"jobs\": %d,\n    \"cases\": [\n" jobs;
  List.iteri
    (fun i r ->
      pr
        "      {\"name\": \"%s\", \"naive_s\": %.4f, \"memoized_s\": %.4f, \
         \"memoized_parallel_s\": %.4f, \"verdicts_equal\": %b}%s\n"
        (json_escape r.er_name) r.er_naive r.er_dedup r.er_dedup_par
        r.er_verdicts_equal
        (if i = List.length engine_rows - 1 then "" else ","))
    engine_rows;
  pr "    ]\n  }\n}\n";
  close_out oc

(* --- BENCH_analyze.json: the pruning record. --- *)

let write_analyze_json ~path (rows : prune_row list) =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr "{\n  \"prune_comparison\": [\n";
  List.iteri
    (fun i r ->
      pr
        "    {\"name\": \"%s\", \"baseline_s\": %.4f, \"pruned_s\": %.4f, \
         \"verdicts_equal\": %b}%s\n"
        (json_escape r.pr_name) r.pr_base r.pr_pruned r.pr_verdicts_equal
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pr "  ]\n}\n";
  close_out oc

(* --- BENCH_por.json: the partial-order-reduction record. --- *)

let write_por_json ~path (rows : por_row list) =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr
    "{\n  \"por_reduction\": {\n    \"target_min_x\": 1.5,\n    \
     \"target_cases\": [%s],\n    \"dedup\": false,\n    \"warmup\": %d,\n    \
     \"repeats\": %d,\n    \"cases\": [\n"
    (String.concat ", "
       (List.map (fun n -> Printf.sprintf "\"%s\"" (json_escape n)) por_targets))
    por_warmup por_repeats;
  List.iteri
    (fun i r ->
      pr
        "      {\"name\": \"%s\", \"full_states\": %d, \"por_states\": %d, \
         \"reduction_x\": %s, \"full_s\": %.4f, \"por_s\": %.4f, \
         \"sleep_skips\": %d, \"full_minor_words\": %.0f, \
         \"por_minor_words\": %.0f, \"verdicts_equal\": %b}%s\n"
        (json_escape r.po_name) r.po_full_states r.po_por_states
        (let x = por_reduction r in
         if Float.is_nan x then "null" else Printf.sprintf "%.3f" x)
        r.po_full_s r.po_por_s r.po_sleep_skips r.po_full_minor_words
        r.po_por_minor_words r.po_verdicts_equal
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pr "    ],\n    \"targets_met\": %b,\n    \"wallclock_targets_met\": %b\n  }\n}\n"
    (por_targets_met rows) (por_wallclock_met rows);
  close_out oc

(* --- BENCH_robust.json: the budget-overhead record. --- *)

let write_robust_json ~path (rows : robust_row list) =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr "{\n  \"budget_overhead\": {\n    \"target_pct\": 5.0,\n    \"cases\": [\n";
  List.iteri
    (fun i r ->
      pr
        "      {\"name\": \"%s\", \"unbudgeted_s\": %.4f, \"armed_s\": %.4f, \
         \"overhead_pct\": %s, \"verdicts_equal\": %b}%s\n"
        (json_escape r.rb_name) r.rb_unbudgeted r.rb_armed
        (json_num (rb_overhead_pct r))
        r.rb_verdicts_equal
        (if i = List.length rows - 1 then "" else ","))
    rows;
  let tot f = List.fold_left (fun a r -> a +. f r) 0. rows in
  let tb = tot (fun r -> r.rb_unbudgeted) and ta = tot (fun r -> r.rb_armed) in
  pr "    ],\n    \"total_unbudgeted_s\": %.4f,\n    \"total_armed_s\": %.4f,\n"
    tb ta;
  pr "    \"total_overhead_pct\": %s\n  }\n}\n"
    (json_num (if tb > 0. then (ta -. tb) /. tb *. 100. else nan));
  close_out oc

(* --- BENCH_journal.json: the journal-overhead record. --- *)

let write_journal_json ~path (rows : journal_row list) =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr
    "{\n  \"journal_overhead\": {\n    \"target_pct\": 5.0,\n    \
     \"fsync_policy\": \"interval:0.05\",\n    \"cases\": [\n";
  List.iteri
    (fun i r ->
      pr
        "      {\"name\": \"%s\", \"unjournaled_s\": %.4f, \"journaled_s\": \
         %.4f, \"overhead_pct\": %s, \"verdicts_equal\": %b}%s\n"
        (json_escape r.jr_name) r.jr_bare r.jr_journaled
        (json_num (jr_overhead_pct r))
        r.jr_verdicts_equal
        (if i = List.length rows - 1 then "" else ","))
    rows;
  let tot f = List.fold_left (fun a r -> a +. f r) 0. rows in
  let tb = tot (fun r -> r.jr_bare) and tj = tot (fun r -> r.jr_journaled) in
  pr
    "    ],\n    \"total_unjournaled_s\": %.4f,\n    \"total_journaled_s\": \
     %.4f,\n"
    tb tj;
  pr "    \"total_overhead_pct\": %s\n  }\n}\n"
    (json_num (if tb > 0. then (tj -. tb) /. tb *. 100. else nan));
  close_out oc

(* --- The regenerated evaluation artifacts. --- *)

let print_figure2 () =
  Fmt.pr "== Figure 2: stages of concurrent spanning-tree construction ==@.";
  let pv = Label.make "print_fig2_priv" in
  let sp = Label.make "print_fig2_span" in
  let g0 = Graph_catalog.fig2_graph () in
  let w = World.of_list [ Priv.make pv ] in
  let st =
    State.singleton pv
      (Slice.make
         ~self:(Aux.heap (Graph.to_heap g0))
         ~joint:Heap.empty ~other:(Aux.heap Heap.empty))
  in
  let genv, mine = Sched.genv_of_state w st in
  let name_of p =
    match
      List.find_opt (fun (_, q) -> Ptr.equal p q) Graph_catalog.fig2_nodes
    with
    | Some (n, _) -> n
    | None -> Ptr.to_string p
  in
  let stage = ref 1 in
  let observe genv' _mine step_name =
    let interesting prefix =
      String.length step_name >= String.length prefix
      && String.sub step_name 0 (String.length prefix) = prefix
    in
    if interesting "trymark" || interesting "nullify" then
      match Label.Map.find_opt sp genv'.Sched.joints with
      | Some joint -> (
        match Graph.of_heap joint with
        | Some g ->
          let marked =
            String.concat ""
              (List.map
                 (fun x -> if Graph.mark g x then name_of x else "")
                 (Graph.dom g))
          in
          let edges =
            List.concat_map
              (fun x ->
                List.filter_map
                  (fun y ->
                    if Graph.edge g x y then Some (name_of x ^ "->" ^ name_of y)
                    else None)
                  (Graph.dom g))
              (Graph.dom g)
          in
          Fmt.pr "  (%d) %-22s marked: {%s}  edges: %s@." !stage step_name
            marked
            (String.concat ", " edges);
          incr stage
        | None -> ())
      | None -> ()
  in
  (match
     Sched.run_with_chooser
       ~choose:(fun ~step:_ _ -> 0)
       ~observe genv mine
       (Span.span_root ~pv ~sp (Ptr.of_int 1))
   with
  | Sched.Finished (true, final) ->
    let g = Graph.of_heap_exn (Priv.pv_self pv final) in
    Fmt.pr "  final: spanning tree rooted at a: %b@."
      (Graph.spanning g0 g (Ptr.of_int 1) (Graph.dom_set g))
  | _ -> Fmt.pr "  replay failed@.");
  Fmt.pr "@."

let run_robust () =
  Fmt.pr "== Budget-enforcement overhead: armed but untripped ==@.";
  let rows = robust_comparison () in
  Fmt.pr "%a@." pp_robust_rows rows;
  write_robust_json ~path:"BENCH_robust.json" rows;
  Fmt.pr "wrote BENCH_robust.json@.@."

let run_journal () =
  Fmt.pr "== Journal-armed overhead: write-ahead journaling on vs off ==@.";
  let rows = journal_comparison () in
  Fmt.pr "%a@." pp_journal_rows rows;
  write_journal_json ~path:"BENCH_journal.json" rows;
  Fmt.pr "wrote BENCH_journal.json@.@."

let run_por () =
  Fmt.pr "== Partial-order reduction: sleep sets on vs off (no dedup) ==@.";
  let rows = por_comparison () in
  Fmt.pr "%a@." pp_por_rows rows;
  Fmt.pr "reduction targets (%s >= 1.5x, all verdicts equal): %s@."
    (String.concat ", " por_targets)
    (if por_targets_met rows then "met" else "NOT MET");
  Fmt.pr "wall-clock targets (por faster wherever reduction >= 1.5x): %s@."
    (if por_wallclock_met rows then "met" else "NOT MET");
  write_por_json ~path:"BENCH_por.json" rows;
  Fmt.pr "wrote BENCH_por.json@.@."

(* --- BENCH_serve.json: the service memoization record. --- *)

(* Cold-vs-memoized latency through the daemon itself ([fcsl serve]):
   one in-process server on a fresh journal; every Table 1 case is
   submitted cold once (a full exploration) and then repeatedly (served
   from the journal memo), measuring wall-clock per submission at the
   client.  The gate is registry-total: the memoized pass must beat the
   cold pass by at least 10x (tiny rows are dominated by socket
   round-trips, so per-case ratios are reported but not gated).  A
   sustained-throughput row then drives 4 concurrent clients across the
   memoized registry. *)

module Sv_server = Fcsl_service.Server
module Sv_client = Fcsl_service.Client

type serve_row = {
  sv_name : string;
  sv_cold_s : float;
  sv_memo_p50_s : float;
}

type serve_throughput = { st_submissions : int; st_elapsed_s : float }

type serve_overload = {
  so_submissions : int;  (** flood submissions attempted (all clients) *)
  so_shed : int;  (** answered with a structured shed frame *)
  so_gold_idle_p50_s : float;  (** memoized gold latency, quiet daemon *)
  so_gold_flood_p50_s : float;  (** same probe while the flood runs *)
}

let serve_target_speedup = 10.0
let serve_memo_trials = 5
let serve_clients = 4

(* The overload gate: a saturated queue may slow the gold fast lane —
   probes wait behind whichever exploration the executor is running —
   but degradation must stay graceful, not unbounded. *)
let serve_overload_max_degrade = 5.0
let serve_overload_queue_bound = 2

(* The per-job delay is the flood's dominant, uniform work unit: the
   flood cases below are the registry's near-free rows, so queue
   pressure (and the gold probe's wait) is set by this knob rather
   than by whichever case's exploration happens to be running — that
   keeps the degradation ratio a property of the queue, not of the
   workload mix. *)
let serve_overload_job_delay_s = 0.08

let serve_overload_flood_cases =
  List.filter
    (fun (c : Registry.case) ->
      List.mem c.Registry.c_name [ "CG increment"; "FC-stack"; "Prod/Cons" ])
    Registry.all

let sv_speedup r =
  if r.sv_memo_p50_s > 0. then r.sv_cold_s /. r.sv_memo_p50_s else nan

let so_degrade ov =
  if ov.so_gold_idle_p50_s > 0. then
    ov.so_gold_flood_p50_s /. ov.so_gold_idle_p50_s
  else nan

let so_shed_rate ov =
  if ov.so_submissions > 0 then
    float_of_int ov.so_shed /. float_of_int ov.so_submissions
  else nan

let serve_overload_met ov =
  ov.so_shed > 0 && so_degrade ov < serve_overload_max_degrade

let with_serve_daemon ?(tag = "") ?queue_bound ?overload_high ?overload_low
    ?(job_delay_s = 0.) f =
  let tmp = Filename.get_temp_dir_name () in
  let stamp = Printf.sprintf "fcsl-bench-serve-%d%s" (Unix.getpid ()) tag in
  let dir = Filename.concat tmp stamp in
  let socket = Filename.concat tmp (stamp ^ ".sock") in
  Journal.close (Journal.openj ~resume:false dir);
  let t =
    Sv_server.create
      (Sv_server.config ~signals:false ~jobs:1 ?queue_bound ?overload_high
         ?overload_low ~job_delay_s ~socket ~journal_dir:dir ())
  in
  let th = Thread.create Sv_server.run t in
  if not (Sv_client.wait_ready ~socket ()) then
    failwith "bench: the in-process daemon never answered a ping";
  Fun.protect
    ~finally:(fun () ->
      Sv_server.stop t;
      Thread.join th)
    (fun () -> f ~socket)

let timed_submit cn case =
  let t0 = Unix.gettimeofday () in
  match Sv_client.submit cn ~case with
  | Ok v -> (Unix.gettimeofday () -. t0, v)
  | Error e ->
    failwith (Fmt.str "bench: submit %s: %a" case Sv_client.pp_submit_error e)

let serve_comparison () =
  with_serve_daemon (fun ~socket ->
      let cn = Sv_client.connect ~socket in
      let rows =
        List.map
          (fun (c : Registry.case) ->
            let name = c.Registry.c_name in
            (* NB: a first submission may legitimately come back
               memoized when an earlier case already journalled its
               underlying specs (e.g. the lock cases verify through CG
               increment's counter resource), so cold_s is "first
               submission in registry order", not "guaranteed fresh". *)
            let cold_s, _cold = timed_submit cn name in
            let memo_times =
              List.init serve_memo_trials (fun _ ->
                  let s, v = timed_submit cn name in
                  if not v.Sv_client.v_memo then
                    failwith (name ^ ": repeat submission re-explored");
                  s)
            in
            let sorted = List.sort compare memo_times in
            let p50 = List.nth sorted (serve_memo_trials / 2) in
            { sv_name = name; sv_cold_s = cold_s; sv_memo_p50_s = p50 })
          Registry.all
      in
      Sv_client.close cn;
      (* sustained throughput: [serve_clients] concurrent clients each
         re-submitting the whole (memoized) registry *)
      let t0 = Unix.gettimeofday () in
      let threads =
        List.init serve_clients (fun _ ->
            Thread.create
              (fun () ->
                let cn = Sv_client.connect ~socket in
                List.iter
                  (fun (c : Registry.case) ->
                    ignore (timed_submit cn c.Registry.c_name))
                  Registry.all;
                Sv_client.close cn)
              ())
      in
      List.iter Thread.join threads;
      let tput =
        {
          st_submissions = serve_clients * List.length Registry.all;
          st_elapsed_s = Unix.gettimeofday () -. t0;
        }
      in
      (rows, tput))

(* The overload row: [serve_clients] concurrent clients flood a
   deliberately tiny queue (bound 2, high watermark 1) with bronze
   submissions — each client walks the registry once, rotated so
   distinct digests hit the cold queue together — while a gold client
   keeps probing a memoized case.  Reported: the shed rate the flood
   observed and the gold p50 during the flood vs on the quiet daemon.
   Gated: sheds happened at all (the queue really saturated) and the
   gold fast lane degraded by less than
   [serve_overload_max_degrade]. *)
let serve_overload_run () =
  with_serve_daemon ~tag:"-overload" ~queue_bound:serve_overload_queue_bound
    ~overload_high:1 ~overload_low:0 ~job_delay_s:serve_overload_job_delay_s
    (fun ~socket ->
      let probe_case = (List.hd Registry.all).Registry.c_name in
      let p50 = function
        | [] -> nan
        | times -> List.nth (List.sort compare times) (List.length times / 2)
      in
      let cn = Sv_client.connect ~socket in
      (* warm the probe's gold memo, then measure the quiet baseline *)
      ignore (timed_submit cn probe_case);
      let idle = List.init 9 (fun _ -> fst (timed_submit cn probe_case)) in
      let running = Atomic.make 0 in
      let subs = Atomic.make 0 in
      let sheds = Atomic.make 0 in
      let flood_err = Atomic.make None in
      let flooder i () =
        Atomic.incr running;
        let cases =
          (* rotate per client so distinct fresh digests arrive
             together instead of deduplicating into one job; alternate
             silver and bronze — silver is admitted (and demoted) so
             it saturates the queue, bronze sheds against it *)
          let all = serve_overload_flood_cases in
          let n = List.length all in
          List.concat
            (List.init n (fun k ->
                 let c = List.nth all ((k + i) mod n) in
                 [
                   (c, Fcsl_service.Protocol.Bronze);
                   (c, Fcsl_service.Protocol.Silver);
                 ]))
        in
        let cn = Sv_client.connect ~socket in
        for _round = 1 to 2 do
          List.iter
            (fun ((c : Registry.case), qos) ->
              Atomic.incr subs;
              (match Sv_client.submit ~qos cn ~case:c.Registry.c_name with
              | Ok _ -> ()
              | Error (Sv_client.Shed _) -> Atomic.incr sheds
              | Error e ->
                Atomic.set flood_err
                  (Some (Fmt.str "%a" Sv_client.pp_submit_error e)));
              Thread.delay 0.02)
            cases
        done;
        Sv_client.close cn;
        Atomic.decr running
      in
      let threads =
        List.init serve_clients (fun i -> Thread.create (flooder i) ())
      in
      (* gold probes for as long as the flood lasts: the memo fast lane
         is never shed, so every probe must come back a verdict *)
      let rec probes acc =
        let s, _ = timed_submit cn probe_case in
        if Atomic.get running > 0 then begin
          Thread.delay 0.03;
          probes (s :: acc)
        end
        else s :: acc
      in
      (* wait for the flood to actually start before probing *)
      while Atomic.get subs = 0 do
        Thread.delay 0.005
      done;
      let flood = probes [] in
      List.iter Thread.join threads;
      Sv_client.close cn;
      (match Atomic.get flood_err with
      | Some msg -> failwith ("bench overload flood: " ^ msg)
      | None -> ());
      {
        so_submissions = Atomic.get subs;
        so_shed = Atomic.get sheds;
        so_gold_idle_p50_s = p50 idle;
        so_gold_flood_p50_s = p50 flood;
      })

let serve_total_cold rows =
  List.fold_left (fun a r -> a +. r.sv_cold_s) 0. rows

let serve_total_memo rows =
  List.fold_left (fun a r -> a +. r.sv_memo_p50_s) 0. rows

let serve_total_speedup rows =
  let m = serve_total_memo rows in
  if m > 0. then serve_total_cold rows /. m else nan

let serve_targets_met rows = serve_total_speedup rows >= serve_target_speedup

let pp_serve_rows ppf rows =
  Fmt.pf ppf "  %-28s %12s %14s %10s@." "case" "cold (s)" "memo p50 (s)"
    "speedup";
  List.iter
    (fun r ->
      Fmt.pf ppf "  %-28s %12.4f %14.5f %9.1fx@." r.sv_name r.sv_cold_s
        r.sv_memo_p50_s (sv_speedup r))
    rows;
  Fmt.pf ppf "  %-28s %12.4f %14.5f %9.1fx@." "TOTAL" (serve_total_cold rows)
    (serve_total_memo rows) (serve_total_speedup rows)

let pp_serve_overload ppf ov =
  Fmt.pf ppf
    "  overload: %d clients vs queue bound %d: %d/%d flood submissions shed \
     (%.0f%%)@."
    serve_clients serve_overload_queue_bound ov.so_shed ov.so_submissions
    (100. *. so_shed_rate ov);
  Fmt.pf ppf
    "  gold p50 idle %.5fs, under flood %.5fs (%.1fx, gate < %.0fx)@."
    ov.so_gold_idle_p50_s ov.so_gold_flood_p50_s (so_degrade ov)
    serve_overload_max_degrade

let write_serve_json ~path
    ((rows, tput, ov) :
      serve_row list * serve_throughput * serve_overload) =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr "{\n  \"serve\": {\n    \"target_speedup\": %.1f,\n    \"cases\": [\n"
    serve_target_speedup;
  List.iteri
    (fun i r ->
      pr
        "      {\"name\": \"%s\", \"cold_s\": %.4f, \"memo_p50_s\": %.5f, \
         \"speedup\": %s}%s\n"
        (json_escape r.sv_name) r.sv_cold_s r.sv_memo_p50_s
        (json_num (sv_speedup r))
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pr "    ],\n    \"total_cold_s\": %.4f,\n    \"total_memo_p50_s\": %.5f,\n"
    (serve_total_cold rows) (serve_total_memo rows);
  pr "    \"total_speedup\": %s,\n" (json_num (serve_total_speedup rows));
  pr
    "    \"throughput\": {\"clients\": %d, \"submissions\": %d, \
     \"elapsed_s\": %.4f, \"verdicts_per_s\": %s},\n"
    serve_clients tput.st_submissions tput.st_elapsed_s
    (json_num
       (if tput.st_elapsed_s > 0. then
          float_of_int tput.st_submissions /. tput.st_elapsed_s
        else nan));
  pr
    "    \"overload\": {\"clients\": %d, \"queue_bound\": %d, \
     \"submissions\": %d, \"shed\": %d, \"shed_rate\": %s, \
     \"gold_idle_p50_s\": %.5f, \"gold_flood_p50_s\": %.5f, \
     \"degrade\": %s, \"max_degrade\": %.1f},\n"
    serve_clients serve_overload_queue_bound ov.so_submissions ov.so_shed
    (json_num (so_shed_rate ov))
    ov.so_gold_idle_p50_s ov.so_gold_flood_p50_s
    (json_num (so_degrade ov))
    serve_overload_max_degrade;
  pr "    \"targets_met\": %b\n  }\n}\n"
    (serve_targets_met rows && serve_overload_met ov);
  close_out oc

let run_serve () =
  Fmt.pr "== Service memoization: cold vs journal-memoized latency ==@.";
  let rows, tput = serve_comparison () in
  Fmt.pr "%a@." pp_serve_rows rows;
  Fmt.pr "  throughput: %d clients, %d memoized verdicts in %.2fs (%.0f/s)@."
    serve_clients tput.st_submissions tput.st_elapsed_s
    (float_of_int tput.st_submissions /. tput.st_elapsed_s);
  let ov = serve_overload_run () in
  Fmt.pr "%a@." pp_serve_overload ov;
  Fmt.pr "memoization target (total >= %.0fx): %s@." serve_target_speedup
    (if serve_targets_met rows then "met" else "NOT MET");
  Fmt.pr "overload target (sheds > 0, gold p50 degrades < %.0fx): %s@."
    serve_overload_max_degrade
    (if serve_overload_met ov then "met" else "NOT MET");
  write_serve_json ~path:"BENCH_serve.json" (rows, tput, ov);
  Fmt.pr "wrote BENCH_serve.json@.@."

(* [--robust-only] / [--journal-only] / [--por-only] / [--serve-only]
   regenerate just the corresponding CI artifact without paying for the
   bechamel suite. *)
let robust_only = Array.exists (String.equal "--robust-only") Sys.argv
let journal_only = Array.exists (String.equal "--journal-only") Sys.argv
let por_only = Array.exists (String.equal "--por-only") Sys.argv
let serve_only = Array.exists (String.equal "--serve-only") Sys.argv

let () =
  if robust_only then (
    Fmt.pr "FCSL robustness benchmark (budget-enforcement overhead)@.@.";
    run_robust ();
    exit 0);
  if journal_only then (
    Fmt.pr "FCSL durability benchmark (journal-armed overhead)@.@.";
    run_journal ();
    exit 0);
  if por_only then (
    Fmt.pr "FCSL reduction benchmark (sleep-set POR states reduction)@.@.";
    run_por ();
    exit 0);
  if serve_only then (
    Fmt.pr "FCSL service benchmark (cold vs memoized verdict latency)@.@.";
    run_serve ();
    exit 0);
  Fmt.pr "FCSL benchmark & evaluation harness (paper: PLDI 2015)@.@.";
  let bench_rows = run_benchmarks () in
  let jobs = Pool.recommended_jobs () in
  Fmt.pr "== Engine comparison: naive vs memoized vs memoized+parallel (-j %d) ==@."
    jobs;
  let engine_rows = engine_comparison ~jobs () in
  Fmt.pr "%a@." pp_engine_rows engine_rows;
  write_bench_json ~path:"BENCH_explore.json" ~jobs bench_rows engine_rows;
  Fmt.pr "wrote BENCH_explore.json@.@.";
  Fmt.pr "== Pruning comparison: footprint-based env-step pruning ==@.";
  let prune_rows = prune_comparison () in
  Fmt.pr "%a@." pp_prune_rows prune_rows;
  write_analyze_json ~path:"BENCH_analyze.json" prune_rows;
  Fmt.pr "wrote BENCH_analyze.json@.@.";
  run_por ();
  run_robust ();
  run_journal ();
  run_serve ();
  Fmt.pr "== Table 1: statistics for implemented programs ==@.";
  Fmt.pr "%a@." Tables.pp_table1 (Tables.table1 ());
  Fmt.pr "== Table 2: primitive concurroids employed by programs ==@.";
  Fmt.pr "%a@." Tables.pp_table2 ();
  Fmt.pr "Table 2 matches the paper's matrix: %b@.@."
    (Tables.table2_matches_paper ());
  print_figure2 ();
  Fmt.pr "== Figure 5: dependencies between concurrent libraries ==@.";
  Fmt.pr "%a@." Tables.pp_fig5_ascii ();
  Fmt.pr "DOT form:@.%a@." Tables.pp_fig5 ();
  Fmt.pr "Figure 5 matches the paper's diagram: %b@."
    (Tables.fig5_matches_paper ())
