(* The fcsl command-line tool.

     fcsl verify [NAME]      mechanically verify case studies
     fcsl table1             regenerate the paper's Table 1
     fcsl table2             regenerate the paper's Table 2
     fcsl deps               regenerate the paper's Figure 5
     fcsl parse FILE         parse & pretty-print a surface program
     fcsl run FILE           run a surface program on a random graph
     fcsl span               spanning-tree demo (model / extracted)
     fcsl analyze [FILE...]  static race detection + spec/concurroid lints
     fcsl lint               spec/concurroid lints over the case studies
     fcsl chaos              fault-injection harness over the registry
     fcsl jobs status DIR    inspect a write-ahead verification journal
     fcsl serve              run the verification daemon (docs/SERVICE.md)
     fcsl submit CASE...     submit cases to a running daemon

   Exit codes (stable; see docs/ROBUSTNESS.md): 0 everything verified,
   1 verification failure, 2 degraded-inconclusive (a budget forced the
   verdict below a complete exploration), 3 internal error.
*)

open Cmdliner
open Fcsl_heap
open Fcsl_core
open Fcsl_casestudies
module Aux = Fcsl_pcm.Aux
module Registry = Fcsl_report.Registry
module Tables = Fcsl_report.Tables

let exit_ok = Verify.exit_ok
let exit_failed = Verify.exit_failed
let exit_internal = Verify.exit_internal

(* verify *)

(* Renders one case's verification to a string so that parallel runs
   (-j) can print whole-case blocks in registry order instead of
   interleaving lines from several domains. *)
let verify_case (c : Registry.case) : string * Verify.report list =
  let t0 = Unix.gettimeofday () in
  let reports = c.Registry.c_verify () in
  let dt = Unix.gettimeofday () -. t0 in
  let out =
    Fmt.str "@[<v2>%s:@ %a(%.2fs)@]@." c.Registry.c_name
      (Fmt.list ~sep:Fmt.cut (fun ppf r -> Fmt.pf ppf "%a@ " Verify.pp_report r))
      reports dt
  in
  (out, reports)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Verify on $(docv) domains in parallel (case studies fan out \
           over a domain pool; output order is unchanged)")

let no_dedup_flag =
  Arg.(
    value & flag
    & info [ "no-dedup" ]
        ~doc:
          "Disable configuration memoization in the scheduler and \
           re-explore every interleaving naively (slower; useful for \
           cross-checking the memoized engine)")

let prune_flag =
  Arg.(
    value & flag
    & info [ "prune" ]
        ~doc:
          "Use inferred program/spec footprints to skip environment \
           steps at labels outside the triple's envelope (sound: a \
           dynamic monitor crashes the run if a footprint under-declares)")

let por_flag =
  Arg.(
    value & flag
    & info [ "por" ]
        ~doc:
          "Enable sound partial-order reduction: sleep-set pruning \
           driven by the static independence analysis (see $(b,fcsl \
           analyze --independence)).  Verdicts never change — a move \
           observed mutating outside its declared footprint demotes the \
           run to full exploration with a located diagnostic — but the \
           explored-state counts shrink.  Journals record the flag, so \
           POR and non-POR runs never cross-replay")

let deadline_arg =
  Arg.(
    value & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Arm a wall-clock budget of $(docv) seconds per triple.  On \
           exhaustion the verifier degrades (exhaustive, then \
           footprint-pruned, then seeded sampling) instead of hanging, \
           and exits 2 when the verdict is thereby inconclusive")

let max_states_arg =
  Arg.(
    value & opt (some int) None
    & info [ "max-states" ] ~docv:"N"
        ~doc:"Arm a budget of $(docv) explored states per triple")

let max_heap_words_arg =
  Arg.(
    value & opt (some int) None
    & info [ "max-heap-words" ] ~docv:"N"
        ~doc:"Arm a budget of $(docv) major-heap words")

let engine_seed_arg =
  Arg.(
    value & opt (some int) None
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Base seed for sampled (randomized) verification tiers; \
           recorded in the report so sampled verdicts replay exactly")

let budget_of deadline max_states max_heap_words =
  match (deadline, max_states, max_heap_words) with
  | None, None, None -> None
  | deadline_s, max_states, max_major_words ->
    Some (Budget.limits ?deadline_s ?max_states ?max_major_words ())

let journal_arg =
  Arg.(
    value & opt (some string) None
    & info [ "journal" ] ~docv:"DIR"
        ~doc:
          "Journal verification progress to a write-ahead journal in \
           $(docv) (created if missing): per-state durable units, \
           frontier checkpoints, counterexamples at discovery, and \
           whole-spec verdicts.  A journaled run survives kill -9; see \
           $(b,--resume)")

let resume_flag =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "With $(b,--journal), recover the journal (validating \
           checksums and truncating any torn tail) and resume: \
           journaled verdicts and units replay instead of re-exploring, \
           so an interrupted run completes with verdicts identical to \
           an uninterrupted one.  Without this flag a pre-existing \
           journal in DIR is discarded")

let fsync_arg =
  Arg.(
    value & opt (some string) None
    & info [ "fsync" ] ~docv:"POLICY"
        ~doc:
          "Journal durability policy: $(b,always) (fsync every commit), \
           $(b,interval) or $(b,interval:SECS) (group commit, fsync at \
           most every SECS seconds; default interval:0.05), $(b,never) \
           (leave flushing to the OS)")

let journal_of dir resume fsync =
  match dir with
  | None ->
    if resume then begin
      Fmt.epr "--resume requires --journal DIR@.";
      exit exit_internal
    end;
    None
  | Some dir ->
    let fsync =
      Option.map
        (fun s ->
          match Journal.fsync_policy_of_string s with
          | Ok p -> p
          | Error e ->
            Fmt.epr "bad --fsync: %s@." e;
            exit exit_internal)
        fsync
    in
    Some (Journal.openj ?fsync ~resume dir)

let verify_cmd =
  let name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  let run name jobs no_dedup prune por deadline max_states max_heap_words seed
      journal_dir resume fsync =
    let cases =
      match name with
      | None -> Registry.all
      | Some n -> (
        match Registry.find n with
        | Some c -> [ c ]
        | None ->
          Fmt.epr "unknown case study %S; available:@." n;
          List.iter
            (fun c -> Fmt.epr "  %s@." c.Registry.c_name)
            Registry.all;
          exit exit_failed)
    in
    let journal = journal_of journal_dir resume fsync in
    Option.iter
      (fun j ->
        match Journal.recovered j with
        | [] -> ()
        | rs ->
          Fmt.pr "journal: resumed from %d record(s)%s@." (List.length rs)
            (match Journal.truncated_bytes j with
            | 0 -> ""
            | n -> Fmt.str " (%d bytes of torn tail truncated)" n))
      journal;
    (* Deadlock pre-flight: the static lock-order pass is orders of
       magnitude cheaper than exploration, so surface its verdicts
       before committing to the search.  A warning, not a gate — the
       stuck-state detector inside the exploration is the sound layer;
       the static pass narrows where to look. *)
    List.iter
      (fun (c : Registry.case) ->
        match Fcsl_analysis.Deadlock.analyze_case c.Registry.c_name with
        | Some v when not (Fcsl_analysis.Deadlock.clean v) ->
          Fmt.epr
            "warning: deadlock pre-flight flagged %s before verification:@."
            c.Registry.c_name;
          List.iter
            (fun f -> Fmt.epr "  %a@." Fcsl_analysis.Diag.pp f)
            (Fcsl_analysis.Diag.errors v.Fcsl_analysis.Deadlock.v_findings)
        | Some _ | None -> ())
      cases;
    Fun.protect ~finally:(fun () -> Option.iter Journal.close journal)
    @@ fun () ->
    Verify.with_engine ~dedup:(not no_dedup) ~prune ~por
      ~por_certs:(Fcsl_analysis.Independence.certs_all ())
      ?budget:(budget_of deadline max_states max_heap_words)
      ?seed ~journal
    @@ fun () ->
    let results = Pool.map ~jobs verify_case cases in
    let reports =
      List.concat_map
        (fun (out, reports) ->
          print_string out;
          reports)
        results
    in
    let code = Verify.exit_code reports in
    if code = exit_ok then Fmt.pr "all verified.@."
    else if code = Verify.exit_degraded then
      Fmt.pr "no failures, but some verdicts are budget-degraded.@.";
    code
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Mechanically verify case studies (all by default)")
    Term.(
      const run $ name_arg $ jobs_arg $ no_dedup_flag $ prune_flag $ por_flag
      $ deadline_arg $ max_states_arg $ max_heap_words_arg $ engine_seed_arg
      $ journal_arg $ resume_flag $ fsync_arg)

(* jobs *)

let jobs_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Journal directory (see $(b,fcsl verify --journal))")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the schema-versioned JSON rendering instead of the \
             table — the exact payload the service daemon's status \
             endpoint returns (minus its live queue fields), so the \
             offline CLI and the daemon share one renderer")
  in
  let status dir json =
    if not (Sys.file_exists (Journal.wal_path dir))
       && not (Sys.file_exists (Journal.snapshot_path dir))
    then begin
      Fmt.epr "no journal in %s@." dir;
      exit_internal
    end
    else begin
      (* Pure read: inspecting a journal never mutates it, so a status
         query is safe while a verification run is writing. *)
      let records, torn = Journal.read dir in
      let jobs = Journal.jobs_of_records records in
      if json then begin
        (* The journal-derived subset of the health fields: the shed
           ledger's cumulative counter.  Live-only gauges (uptime,
           queue depth, ...) render as null — same schema as the
           daemon's status endpoint, one renderer. *)
        let shed_total =
          List.fold_left
            (fun acc -> function
              | Journal.Spec_done ri
                when String.length ri.Journal.ri_spec > 5
                     && String.sub ri.Journal.ri_spec 0 5 = "shed/" ->
                max acc ri.Journal.ri_states
              | _ -> acc)
            0 records
        in
        let extra =
          Fcsl_service.Protocol.health_fields ~shed_total
            ~overload_state:Fcsl_service.Protocol.Normal ()
        in
        print_endline (Fcsl_service.Protocol.jobs_to_json ~extra jobs)
      end
      else begin
        if torn > 0 then
          Fmt.pr "(%d bytes of torn tail would be truncated on resume)@." torn;
        Fmt.pr "%a@." Journal.pp_jobs jobs
      end;
      exit_ok
    end
  in
  Cmd.group
    (Cmd.info "jobs" ~doc:"Inspect journaled verification runs")
    [
      Cmd.v
        (Cmd.info "status"
           ~doc:
             "List the runs recorded in a journal directory — complete, \
              degraded, failed, or still in flight — with their tier, \
              durable units, and consumed budget.  Read-only: safe \
              against a live journal")
        Term.(const status $ dir_arg $ json_flag);
    ]

(* serve / submit *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on / the client dials")

let serve_cmd =
  let queue_arg =
    Arg.(
      value & opt int 16
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Cold-queue bound: submissions needing fresh exploration \
             beyond $(docv) queued jobs receive a structured shed frame \
             (memo-served submissions are never shed — they cost no \
             exploration)")
  in
  let idle_exit_arg =
    Arg.(
      value & opt (some float) None
      & info [ "idle-exit" ] ~docv:"SECS"
          ~doc:
            "Drain and exit after $(docv) seconds with no connections \
             and no queued work (CI hygiene: a forgotten daemon \
             reaps itself)")
  in
  let job_delay_arg =
    Arg.(
      value & opt float 0.
      & info [ "job-delay" ] ~docv:"SECS"
          ~doc:
            "Sleep $(docv) seconds before each job's exploration — a \
             testing/chaos aid that makes mid-job kills and queue \
             overflow deterministic")
  in
  let supervise_flag =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Run the daemon under a watchdog parent: child death (crash, \
             kill -9, OOM) is answered with a jittered-backoff restart \
             with $(b,--resume) semantics, until $(b,--restart-limit) \
             failures land inside $(b,--restart-window) seconds — then \
             the supervisor gives up with exit code 4")
  in
  let restart_limit_arg =
    Arg.(
      value & opt int 5
      & info [ "restart-limit" ] ~docv:"N"
          ~doc:"Give up after $(docv) child failures inside the window")
  in
  let restart_window_arg =
    Arg.(
      value & opt float 60.
      & info [ "restart-window" ] ~docv:"SECS"
          ~doc:"The sliding failure window for $(b,--restart-limit)")
  in
  let restart_backoff_arg =
    Arg.(
      value & opt float 0.25
      & info [ "restart-backoff" ] ~docv:"SECS"
          ~doc:
            "Base restart delay; doubles per failure in the window, with \
             jitter")
  in
  let pidfile_arg =
    Arg.(
      value & opt (some string) None
      & info [ "pidfile" ] ~docv:"PATH"
          ~doc:
            "Where the supervisor records the current child's pid \
             (default: $(i,JOURNAL)/daemon.pid when supervising)")
  in
  let overload_high_arg =
    Arg.(
      value & opt (some int) None
      & info [ "overload-high" ] ~docv:"N"
          ~doc:
            "Cold-queue depth that declares overload: bronze submissions \
             shed, gold/silver demoted one QoS rung with verdicts marked \
             degraded (default: 3/4 of $(b,--queue))")
  in
  let overload_low_arg =
    Arg.(
      value & opt (some int) None
      & info [ "overload-low" ] ~docv:"N"
          ~doc:
            "Cold-queue depth that releases overload (hysteresis; \
             default: 1/4 of $(b,--queue))")
  in
  let rate_arg =
    Arg.(
      value & opt (some float) None
      & info [ "rate" ] ~docv:"PER_SEC"
          ~doc:
            "Per-client token-bucket rate limit: submissions past the \
             bucket shed with reason rate-limited (off by default)")
  in
  let burst_arg =
    Arg.(
      value & opt int 20
      & info [ "burst" ] ~docv:"N"
          ~doc:"Token-bucket burst capacity (with $(b,--rate))")
  in
  let run socket journal_dir resume fsync queue jobs idle_exit job_delay
      supervise restart_limit restart_window restart_backoff pidfile
      overload_high overload_low rate burst =
    let fsync =
      Option.map
        (fun s ->
          match Journal.fsync_policy_of_string s with
          | Ok p -> p
          | Error e ->
            Fmt.epr "bad --fsync: %s@." e;
            exit exit_internal)
        fsync
    in
    let mkcfg ~resume =
      Fcsl_service.Server.config ~resume ?fsync ~queue_bound:queue ~jobs
        ?idle_exit_s:idle_exit ~job_delay_s:job_delay ?overload_high
        ?overload_low
        ?rate:(Option.map (fun r -> (r, burst)) rate)
        ~socket ~journal_dir:journal_dir ()
    in
    if not supervise then begin
      let t = Fcsl_service.Server.create (mkcfg ~resume) in
      Fmt.pr "fcsl serve: listening on %s (journal %s%s)@." socket journal_dir
        (if resume then ", resumed" else "");
      Fcsl_service.Server.run t;
      Fmt.pr "fcsl serve: drained.@.";
      exit_ok
    end
    else begin
      (* The watchdog: fork daemon children and restart them under the
         backoff budget.  The fork happens before this process ever
         spawns a domain — only the children run the engine. *)
      (try Unix.mkdir journal_dir 0o755
       with Unix.Unix_error _ | Sys_error _ -> ());
      let pidfile =
        Option.value pidfile
          ~default:(Filename.concat journal_dir "daemon.pid")
      in
      let spawn ~restart =
        flush stdout;
        flush stderr;
        match Unix.fork () with
        | 0 ->
          let code =
            try
              (* every restarted child resumes: its predecessor died
                 with work possibly in flight *)
              Fcsl_service.Server.run
                (Fcsl_service.Server.create (mkcfg ~resume:(resume || restart)));
              exit_ok
            with e ->
              Fmt.epr "fcsl serve: %s@." (Printexc.to_string e);
              exit_internal
          in
          Unix._exit code
        | pid -> pid
      in
      let sup =
        Fcsl_service.Supervisor.config ~restart_limit ~window_s:restart_window
          ~backoff_base_s:restart_backoff ~pidfile
          ~log:(fun m -> Fmt.epr "%s@." m)
          ()
      in
      Fmt.pr "fcsl serve: supervising on %s (journal %s, pidfile %s)@." socket
        journal_dir pidfile;
      Fcsl_service.Supervisor.run sup ~spawn
    end
  in
  let journal_req =
    Arg.(
      required
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Journal directory backing the daemon: every job is \
             journaled through it, and its verdict records double as \
             the memo cache keyed by parameter digests")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the verification daemon: accept spec-verification jobs \
          over a Unix-domain socket (newline-delimited JSON), schedule \
          them under per-job QoS budgets, journal everything, and serve \
          unchanged digests from the journal memo without re-exploring. \
          SIGTERM drains gracefully; see docs/SERVICE.md")
    Term.(
      const run $ socket_arg $ journal_req $ resume_flag $ fsync_arg
      $ queue_arg $ jobs_arg $ idle_exit_arg $ job_delay_arg
      $ supervise_flag $ restart_limit_arg $ restart_window_arg
      $ restart_backoff_arg $ pidfile_arg $ overload_high_arg
      $ overload_low_arg $ rate_arg $ burst_arg)

let submit_cmd =
  let cases_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"CASE")
  in
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Submit every Table 1 registry case, in order")
  in
  let qos_arg =
    Arg.(
      value & opt string "gold"
      & info [ "qos" ] ~docv:"TIER"
          ~doc:
            "QoS tier: $(b,gold) (unbounded, conclusive or bust), \
             $(b,silver) (20s wall clock), $(b,bronze) (5s + 20k-state \
             ceiling); bounded tiers degrade through the verification \
             ladder instead of hanging")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print each verdict frame as one JSON line (the wire form)")
  in
  let canonical_flag =
    Arg.(
      value & flag
      & info [ "canonical" ]
          ~doc:
            "Print each verdict's diff-stable subset (case, status, \
             timing-stripped reports) as one JSON line — what the CI \
             resilience proof compares across daemon restarts")
  in
  let timeout_arg =
    Arg.(
      value & opt float 600.
      & info [ "timeout" ] ~docv:"SECS" ~doc:"Per-submission verdict timeout")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry transport failures and sheds up to $(docv) times per \
             case with jittered exponential backoff and a fresh \
             connection per attempt (a supervised daemon may be \
             mid-restart); resubmission is idempotent — a retry landing \
             after the first attempt completed is served from the memo")
  in
  let retry_budget_arg =
    Arg.(
      value & opt float 60.
      & info [ "retry-budget-s" ] ~docv:"SECS"
          ~doc:
            "Total wall-clock budget per case across all attempts and \
             backoff sleeps (with $(b,--retries))")
  in
  let run socket cases all qos json canonical timeout retries retry_budget =
    let qos =
      match Fcsl_service.Protocol.qos_of_name qos with
      | Some q -> q
      | None ->
        Fmt.epr "unknown QoS tier %S (gold, silver, bronze)@." qos;
        exit exit_internal
    in
    let cases =
      if all then List.map (fun c -> c.Registry.c_name) Registry.all
      else if cases = [] then begin
        Fmt.epr "no cases given (name them or pass --all)@.";
        exit exit_internal
      end
      else cases
    in
    (* Retrying submissions open a fresh connection per attempt (the
       whole point: the previous daemon incarnation may be gone), so the
       shared connection only exists on the non-retry path. *)
    let with_conn f =
      if retries > 0 then f None
      else begin
        let conn =
          try Fcsl_service.Client.connect ~socket
          with e ->
            Fmt.epr "cannot reach the daemon at %s: %s@." socket
              (Printexc.to_string e);
            exit exit_internal
        in
        Fun.protect ~finally:(fun () -> Fcsl_service.Client.close conn)
        @@ fun () -> f (Some conn)
      end
    in
    with_conn @@ fun conn ->
    let statuses =
      List.map
        (fun case ->
          let outcome =
            match conn with
            | Some conn ->
              Fcsl_service.Client.submit ~qos ~timeout_s:timeout conn ~case
            | None -> (
              match
                Fcsl_service.Client.submit_retry ~qos ~retries
                  ~retry_budget_s:retry_budget ~attempt_timeout_s:timeout
                  ~socket ~case ()
              with
              | Ok rv -> Ok rv.Fcsl_service.Client.rv_verdict
              | Error e -> Error e)
          in
          match outcome with
          | Ok v ->
            if json then
              print_endline (Fcsl_service.Json.to_string v.Fcsl_service.Client.v_frame)
            else if canonical then
              print_endline
                (Fcsl_service.Json.to_string
                   (Fcsl_service.Protocol.canonical_verdict
                      v.Fcsl_service.Client.v_frame))
            else
              Fmt.pr "%s: status %d%s%s@." case
                v.Fcsl_service.Client.v_status
                (if v.Fcsl_service.Client.v_memo then " (memo)" else "")
                (if v.Fcsl_service.Client.v_cancelled then " (cancelled)"
                 else "");
            v.Fcsl_service.Client.v_status
          | Error e ->
            Fmt.epr "%s: %a@." case Fcsl_service.Client.pp_submit_error e;
            exit_internal)
        cases
    in
    (* The exit-code dominance of Verify.exit_code, applied to wire
       statuses: failures beat internal errors beat degradation. *)
    if List.mem Verify.exit_failed statuses then Verify.exit_failed
    else if List.mem exit_internal statuses then exit_internal
    else if List.mem Verify.exit_degraded statuses then Verify.exit_degraded
    else exit_ok
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit registry cases to a running $(b,fcsl serve) daemon and \
          wait for verdicts (exit code follows the verify taxonomy)")
    Term.(
      const run $ socket_arg $ cases_arg $ all_flag $ qos_arg $ json_flag
      $ canonical_flag $ timeout_arg $ retries_arg $ retry_budget_arg)

(* tables *)

let table1_cmd =
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Also print the exploration-counter companion table: per row, \
             memo hits/misses, POR sleep skips, worst memo-bucket depth, \
             and minor-heap words allocated by the explorations")
  in
  let run jobs prune por stats =
    Verify.with_engine ~prune ~por
      ~por_certs:(Fcsl_analysis.Independence.certs_all ())
    @@ fun () ->
    let rows = Tables.table1 ~jobs () in
    Fmt.pr "%a@." Tables.pp_table1 rows;
    if stats then Fmt.pr "%a@." Tables.pp_table1_stats rows;
    exit_ok
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:
         "Regenerate Table 1 (LoC statistics + verify times + explored \
          states)")
    Term.(const run $ jobs_arg $ prune_flag $ por_flag $ stats_flag)

let table2_cmd =
  let run () =
    Fmt.pr "%a@." Tables.pp_table2 ();
    Fmt.pr "matches the paper: %b@." (Tables.table2_matches_paper ());
    exit_ok
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Regenerate Table 2 (concurroid reuse matrix)")
    Term.(const run $ const ())

let deps_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit GraphViz DOT output")
  in
  let run dot_flag =
    if dot_flag then Fmt.pr "%a@." Tables.pp_fig5 ()
    else begin
      Fmt.pr "%a@." Tables.pp_fig5_ascii ();
      Fmt.pr "matches the paper: %b@." (Tables.fig5_matches_paper ())
    end;
    exit_ok
  in
  Cmd.v
    (Cmd.info "deps" ~doc:"Regenerate Figure 5 (library dependency diagram)")
    Term.(const run $ dot)

(* laws *)

let laws_cmd =
  let run () =
    Fmt.pr "Metatheory law checks (concurroid & action laws, Sections 3.3-3.4):@.";
    if Fcsl_report.Laws.run_all () then begin
      Fmt.pr "all laws hold.@.";
      exit_ok
    end
    else exit_failed
  in
  Cmd.v
    (Cmd.info "laws"
       ~doc:
         "Check the FCSL metatheory laws of every concurroid and action in           the case-study suite")
    Term.(const run $ const ())

(* parse *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run file =
    match Fcsl_lang.Parser.parse_program (read_file file) with
    | prog ->
      Fmt.pr "%a@." Fcsl_lang.Pp.pp_program prog;
      exit_ok
    | exception Fcsl_lang.Parser.Parse_error msg ->
      Fmt.epr "parse error: %s@." msg;
      exit_failed
    | exception Fcsl_lang.Lexer.Error (msg, line) ->
      Fmt.epr "lex error (line %d): %s@." line msg;
      exit_failed
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse and pretty-print a surface-language file")
    Term.(const run $ file_arg)

(* run *)

let nodes_arg =
  Arg.(value & opt int 10 & info [ "nodes"; "n" ] ~docv:"N" ~doc:"Graph size")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed")

let extract_flag =
  Arg.(
    value & flag
    & info [ "extract" ]
        ~doc:"Run the extracted program on real OCaml 5 domains")

let run_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let proc_arg =
    Arg.(
      value & opt string "span"
      & info [ "proc" ] ~docv:"NAME" ~doc:"Procedure to invoke")
  in
  let run file proc nodes seed extract =
    let prog = Fcsl_lang.Parser.parse_program (read_file file) in
    let rng = Random.State.make [| seed |] in
    let g0 = Graph_catalog.random_connected_graph ~rng nodes in
    Fmt.pr "initial graph (%d nodes):@.%a@.@." nodes Graph.pp g0;
    let h, v =
      if extract then
        Fcsl_extract.Extract.run prog ~proc
          ~args:[ Value.ptr (Ptr.of_int 1) ]
          (Graph.to_heap g0)
      else
        Fcsl_lang.Interp.run ~seed prog ~proc
          ~args:[ Value.ptr (Ptr.of_int 1) ]
          (Graph.to_heap g0)
    in
    Fmt.pr "%s returned %a; final heap:@." proc Value.pp v;
    (match Graph.of_heap h with
    | Some g ->
      Fmt.pr "%a@.spanning tree: %b@." Graph.pp g
        (Graph.spanning g0 g (Ptr.of_int 1) (Graph.dom_set g))
    | None -> Fmt.pr "(final heap is not graph-shaped)@.");
    exit_ok
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run a surface program on a random connected graph (reference \
          interpreter, or real domains with --extract)")
    Term.(const run $ file_arg $ proc_arg $ nodes_arg $ seed_arg $ extract_flag)

(* span demo *)

let span_cmd =
  let run nodes seed extract =
    let rng = Random.State.make [| seed |] in
    let g0 = Graph_catalog.random_connected_graph ~rng nodes in
    if extract then begin
      let prog =
        Fcsl_lang.Parser.parse_program Fcsl_lang.Examples.span_source
      in
      let h, v =
        Fcsl_extract.Extract.run prog ~proc:"span"
          ~args:[ Value.ptr (Ptr.of_int 1) ]
          (Graph.to_heap g0)
      in
      let g = Graph.of_heap_exn h in
      Fmt.pr "extracted span on %d nodes: returned %a, spanning %b@." nodes
        Value.pp v
        (Graph.spanning g0 g (Ptr.of_int 1) (Graph.dom_set g));
      exit_ok
    end
    else begin
      let pv = Label.make "cli_priv" and sp = Label.make "cli_span" in
      let w = World.of_list [ Priv.make pv ] in
      let st =
        State.singleton pv
          (Slice.make
             ~self:(Aux.heap (Graph.to_heap g0))
             ~joint:Heap.empty ~other:(Aux.heap Heap.empty))
      in
      let genv, mine = Sched.genv_of_state w st in
      match
        Sched.run_random ~seed ~fuel:1_000_000 genv mine
          (Span.span_root ~pv ~sp (Ptr.of_int 1))
      with
      | Sched.Finished (r, final) ->
        let g = Graph.of_heap_exn (Priv.pv_self pv final) in
        Fmt.pr "model span on %d nodes: returned %b, spanning %b@." nodes r
          (Graph.spanning g0 g (Ptr.of_int 1) (Graph.dom_set g));
        exit_ok
      | Sched.Crashed c ->
        Fmt.epr "crash: %a@." Crash.pp c;
        exit_failed
      | Sched.Diverged ->
        Fmt.epr "diverged@.";
        exit_failed
    end
  in
  Cmd.v
    (Cmd.info "span" ~doc:"Spanning-tree demo on a random connected graph")
    Term.(const run $ nodes_arg $ seed_arg $ extract_flag)

(* analyze / lint *)

module Diag = Fcsl_analysis.Diag
module Cases = Fcsl_analysis.Cases
module Injected = Fcsl_analysis.Injected
module Surface = Fcsl_analysis.Surface

let pp_case_findings ppf (name, findings) =
  match findings with
  | [] -> Fmt.pf ppf "  %-28s clean@." name
  | fs ->
    Fmt.pf ppf "  %-28s %d finding(s)@." name (List.length fs);
    List.iter (fun f -> Fmt.pf ppf "    %a@." Diag.pp f) fs

(* Lint the registered case studies; returns true when all are clean. *)
let lint_cases () : bool =
  Fmt.pr "Case-study lints (concurroid/action laws, surface races):@.";
  let results = Cases.analyze_all () in
  List.iter (pp_case_findings Fmt.stdout) results;
  List.for_all (fun (_, fs) -> not (Diag.has_errors fs)) results

let lint_cmd =
  let run () = if lint_cases () then exit_ok else exit_failed in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the spec/concurroid lint pass over every registered case \
          study (unstable assertions, law violations, dead labels)")
    Term.(const run $ const ())

module Independence = Fcsl_analysis.Independence
module Deadlock = Fcsl_analysis.Deadlock

(* The deadlock section of the v2 JSON payload: registry verdicts plus
   the two injected scenarios, which must come back flagged. *)
let registry_deadlock_verdicts () = Deadlock.analyze_all ()

let injected_deadlock_verdicts () =
  [
    Injected.deadlock_verdict Injected.lock_inversion_scenario;
    Injected.deadlock_verdict Injected.leaked_lock_scenario;
  ]

let deadlock_json () =
  Printf.sprintf "{\"verdicts\": [%s], \"injected\": [%s]}"
    (String.concat ", "
       (List.map Deadlock.verdict_to_json (registry_deadlock_verdicts ())))
    (String.concat ", "
       (List.map Deadlock.verdict_to_json (injected_deadlock_verdicts ())))

let deadlock_ok () =
  List.for_all Deadlock.clean (registry_deadlock_verdicts ())
  && List.for_all
       (fun v -> not (Deadlock.clean v))
       (injected_deadlock_verdicts ())

let analyze_cmd =
  let files_arg = Arg.(value & pos_all file [] & info [] ~docv:"FILE") in
  let no_self_test_flag =
    Arg.(
      value & flag
      & info [ "no-self-test" ]
          ~doc:
            "Skip the failure-injection self-test (three deliberately \
             broken variants that the analyzer must flag)")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit machine-readable JSON instead of prose: one object \
             with a case entry per analyzed unit, each finding carrying \
             its stable rule id — the shape CI diffs against \
             ci/analyze-baseline.json.  Deterministic: no timestamps, \
             analyzer order")
  in
  let independence_flag =
    Arg.(
      value & flag
      & info [ "independence" ]
          ~doc:
            "Print the static independence matrices instead of the lint \
             pass: per case study, every pair of schedulable moves with \
             its verdict and located justification (footprint \
             commutation, PCM law certificate, or distinct-label env \
             confinement) — the relation $(b,--por) verification \
             consumes.  Combines with $(b,--json)")
  in
  let deadlock_flag =
    Arg.(
      value & flag
      & info [ "deadlock" ]
          ~doc:
            "Run the deadlock & progress analysis: census the \
             lock-shaped concurroids of every Table 1 row, assemble \
             lock-order graphs, report cycles and must-release \
             violations, and certify a total lock order when acyclic.  \
             The injected lock-inversion and leaked-lock scenarios must \
             come back flagged.  With $(b,--json), emits the full \
             schema-2 payload (identical to plain $(b,--json)), so both \
             CI steps diff against one committed baseline")
  in
  (* Exit codes follow the Verify.exit_code taxonomy (see
     docs/ROBUSTNESS.md): error-severity findings on genuine units — or
     a missed injected variant — are verification failures (1) and
     dominate; an input the analyzer could not run on at all
     (parse/read error) is an engine failure (3); warnings alone are
     not failures (0).  [broken] counts unanalyzable inputs, [results]
     the units that must be clean, [injected] the variants that must be
     flagged. *)
  let analyze_exit ~broken ~results ~injected =
    if
      List.exists (fun (_, fs) -> Diag.has_errors fs) results
      || List.exists (fun (_, fs) -> not (Diag.has_errors fs)) injected
    then exit_failed
    else if broken > 0 then exit_internal
    else exit_ok
  in
  (* Analyze one surface file: [Ok findings], or [Error finding] when
     the analysis could not run (the finding still renders, but counts
     toward [broken], not toward the clean/flagged verdict). *)
  let analyze_file file =
    match Surface.analyze_source ~name:file (read_file file) with
    | Ok fs -> Ok (file, fs)
    | Error msg ->
      Error
        ( file,
          [
            Diag.error ~rule:"parse-error" ~loc:file
              (Fmt.str "parse error: %s" msg);
          ] )
    | exception Sys_error msg ->
      Error (file, [ Diag.error ~rule:"read-error" ~loc:file msg ])
  in
  (* The independence matrices, prose or JSON. *)
  let run_independence json =
    let ms = Independence.analyze_all () in
    if json then begin
      print_string "[";
      List.iteri
        (fun i m ->
          if i > 0 then print_string ", ";
          print_string (Independence.matrix_to_json m))
        ms;
      print_string "]\n"
    end
    else
      List.iter (fun m -> Fmt.pr "%a@.@." Independence.pp_matrix m) ms;
    (* Lie demotions surface at verification time; the matrices
       themselves carry no failure verdicts, so a completed derivation
       is ok by the taxonomy. *)
    analyze_exit ~broken:0 ~results:[] ~injected:[]
  in
  (* The lint pass as JSON: surface files, case studies, injected
     variants, one entry each, plus the schema-2 deadlock section; exit
     logic identical to the prose path. *)
  let run_json files no_self_test =
    let file_results = List.map analyze_file files in
    let broken =
      List.length (List.filter Result.is_error file_results)
    in
    let file_ok, file_broken =
      List.partition_map
        (function Ok r -> Left r | Error r -> Right r)
        file_results
    in
    let case_results = Cases.analyze_all () in
    let injected_results =
      if no_self_test then []
      else
        List.map
          (fun (n, fs) -> ("injected:" ^ n, fs))
          (Injected.all_variants ())
    in
    print_string
      (Diag.results_to_json
         ~deadlock:(deadlock_json ())
         (file_ok @ file_broken @ case_results @ injected_results));
    print_newline ();
    let code =
      analyze_exit ~broken
        ~results:(file_ok @ case_results)
        ~injected:injected_results
    in
    if code = exit_ok && not (deadlock_ok ()) then exit_failed else code
  in
  (* Deadlock-only prose: the registry verdicts with their certified
     orders, then the injected scenarios, which must be flagged. *)
  let run_deadlock () =
    Fmt.pr "Deadlock & progress analysis (lock-order graphs):@.";
    let verdicts = registry_deadlock_verdicts () in
    List.iter (fun v -> Fmt.pr "  %a@." Deadlock.pp_verdict v) verdicts;
    Fmt.pr "Injected scenarios (each must be flagged):@.";
    let injected = injected_deadlock_verdicts () in
    List.iter
      (fun (v : Deadlock.verdict) ->
        Fmt.pr "  %-16s %s@." v.Deadlock.v_case
          (if Deadlock.clean v then
             "MISSED — analyzer failed to flag this scenario"
           else Fmt.str "flagged (%d finding(s))" (List.length v.Deadlock.v_findings));
        List.iter (fun f -> Fmt.pr "    %a@." Diag.pp f) v.Deadlock.v_findings)
      injected;
    if
      List.for_all Deadlock.clean verdicts
      && List.for_all (fun v -> not (Deadlock.clean v)) injected
    then begin
      Fmt.pr "deadlock: ok@.";
      exit_ok
    end
    else exit_failed
  in
  let run_prose files no_self_test =
    (* 1. Surface files given on the command line.  Every file is
       analyzed and printed before the verdict is computed — the exit
       code reflects all of them, not just the first failure. *)
    let file_results = List.map analyze_file files in
    List.iter
      (fun r ->
        match r with
        | Ok (file, []) -> Fmt.pr "%s: clean@." file
        | Ok (file, fs) | Error (file, fs) ->
          Fmt.pr "%s:@." file;
          List.iter (fun f -> Fmt.pr "  %a@." Diag.pp f) fs)
      file_results;
    let broken = List.length (List.filter Result.is_error file_results) in
    let file_ok = List.filter_map Result.to_option file_results in
    (* 2. Registered case studies must be clean. *)
    let cases_ok = lint_cases () in
    (* 3. Injected broken variants must each be flagged. *)
    let injected_results =
      if no_self_test then []
      else begin
        Fmt.pr "Failure-injection self-test (each variant must be flagged):@.";
        let vs = Injected.all_variants () in
        List.iter
          (fun (name, fs) ->
            Fmt.pr "  %-28s %s@." name
              (if Diag.has_errors fs then
                 Fmt.str "flagged (%d finding(s))" (List.length fs)
               else "MISSED — analyzer failed to flag this variant");
            List.iter (fun f -> Fmt.pr "    %a@." Diag.pp f) fs)
          vs;
        vs
      end
    in
    let code =
      analyze_exit ~broken ~results:file_ok ~injected:injected_results
    in
    let code = if cases_ok then code else exit_failed in
    if code = exit_ok then Fmt.pr "analyze: ok@.";
    code
  in
  let run files no_self_test json independence deadlock =
    if independence then run_independence json
    else if deadlock then if json then run_json [] no_self_test else run_deadlock ()
    else if json then run_json files no_self_test
    else run_prose files no_self_test
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically analyze surface-language files for races, lint the \
          registered case studies, self-test against injected bugs, run \
          the deadlock & progress pass (with $(b,--deadlock)), and \
          (with $(b,--independence)) derive the action-independence \
          matrices consumed by $(b,--por) verification")
    Term.(
      const run $ files_arg $ no_self_test_flag $ json_flag
      $ independence_flag $ deadlock_flag)

(* chaos *)

module Chaos = Fcsl_analysis.Chaos

let chaos_cmd =
  let registry_flag =
    Arg.(
      value & flag
      & info [ "registry" ]
          ~doc:
            "Run the registry-wide injection modes over every Table 1 \
             row (this is also the default; the flag exists so CI \
             invocations are explicit about their scope)")
  in
  let mode_arg =
    Arg.(
      value & opt (some string) None
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Run a single injection mode (pool-transient, \
             pool-persistent, mid-explore, budget-starve, spurious-cas, \
             transient-unsafe, env-burst, kill9-midrun, \
             service-client-kill, service-torn-frames, service-kill9, \
             service-supervisor-kill, service-overload-flood, \
             journal-enospc, client-retry-partition); default: all modes")
  in
  let case_arg =
    Arg.(
      value & opt_all string []
      & info [ "case" ] ~docv:"NAME"
          ~doc:
            "Restrict registry-wide modes to the given Table 1 row \
             (repeatable); default: the whole registry")
  in
  let run _registry mode cases seed =
    let cases = match cases with [] -> None | cs -> Some cs in
    let outcomes =
      match mode with
      | None -> Chaos.run_all ?cases ~seed ()
      | Some n -> (
        match Chaos.mode_of_name n with
        | Some m -> Chaos.run ?cases ~seed m
        | None ->
          Fmt.epr "unknown chaos mode %S; available:@." n;
          List.iter
            (fun m -> Fmt.epr "  %s@." (Chaos.mode_name m))
            Chaos.all_modes;
          exit exit_failed)
    in
    Fmt.pr "Fault injection (%d outcomes):@." (List.length outcomes);
    List.iter (fun o -> Fmt.pr "  %a@." Chaos.pp_outcome o) outcomes;
    let failed = List.filter (fun o -> not o.Chaos.o_passed) outcomes in
    if failed = [] then begin
      Fmt.pr "chaos: all injections survived.@.";
      exit_ok
    end
    else begin
      Fmt.pr "chaos: %d injection(s) NOT survived.@." (List.length failed);
      exit_failed
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Inject faults (worker exceptions, budget starvation, spurious \
          CAS failures, transient unsafety, interference bursts) and \
          assert the verification engine's verdicts and accounting \
          survive them")
    Term.(const run $ registry_flag $ mode_arg $ case_arg $ seed_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "fcsl" ~version:"1.0.0"
       ~doc:
         "Mechanized verification of fine-grained concurrent programs \
          (FCSL, PLDI 2015) — OCaml reproduction")
    [
      verify_cmd; table1_cmd; table2_cmd; deps_cmd; laws_cmd; parse_cmd;
      run_cmd; span_cmd; analyze_cmd; lint_cmd; chaos_cmd; jobs_cmd;
      serve_cmd; submit_cmd;
    ]

(* Anything escaping a subcommand is an engine failure: exit 3, never a
   raw OCaml backtrace as the only diagnosis. *)
let () =
  match Cmd.eval' main_cmd with
  | code -> exit code
  | exception e ->
    Fmt.epr "fcsl: internal error: %s@." (Printexc.to_string e);
    exit exit_internal
